//! Policy expressions: the data side of the engine.
//!
//! A [`PolicyExpr`] describes a policy as a small tree — primitives at
//! the leaves, combinators above them. Being plain data it can be
//! fingerprinted, encoded on the manifest wire format, pinned in the
//! golden corpus and shipped to cluster workers; the run-time state
//! lives entirely in the [`Evaluator`](crate::Evaluator) compiled from
//! it.
//!
//! Construction is validated: the `fixed`/`greedy`/... builder
//! functions and [`PolicyExpr::validate`] reject NaN parameters, duty
//! cycles outside `[0, 1]`, non-positive EWMA smoothing factors,
//! malformed schedules and over-deep nesting with a typed
//! [`PolicyError`] instead of silently clamping at evaluation time.

use std::fmt;

/// Maximum nesting depth [`PolicyExpr::validate`] accepts. Deep enough
/// for any sane composition, shallow enough that recursive wire
/// decoding of an adversarial manifest can never exhaust the stack.
pub const MAX_POLICY_DEPTH: usize = 16;

/// A composable run-time energy-management policy, as data.
///
/// The three primitive variants are byte-identical in evaluation to the
/// historical [`reference::DutyPolicy`](crate::reference::DutyPolicy)
/// enum (pinned by differential proptests); the combinators are new.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyExpr {
    /// Constant duty cycle regardless of energy state.
    Fixed(f64),
    /// Work hard above a battery threshold, throttle below it.
    Greedy {
        /// Battery fraction separating the two modes.
        threshold: f64,
        /// Duty cycle above the threshold.
        duty_high: f64,
        /// Duty cycle below the threshold.
        duty_low: f64,
    },
    /// Energy-neutral operation: duty = EWMA(harvest power) / active
    /// power, clamped to `[0, 1]` and derated linearly below 20 % of
    /// capacity (brown-out protection).
    EnergyNeutral {
        /// EWMA smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// Forecast-aware energy-neutral variant: one harvest-power EWMA
    /// *per slot-of-day*, smoothed across days with factor `alpha`, so
    /// the duty anticipates the diurnal profile (yesterday's noon
    /// predicts today's noon) instead of trailing the last few slots.
    /// Brown-out derating matches [`PolicyExpr::EnergyNeutral`].
    Forecast {
        /// Cross-day EWMA smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// Battery-health derating: capacity fades with cycle depth. The
    /// inner policy's duty is multiplied by the current health factor
    /// `max(floor, 1 − fade · equivalent_full_cycles)`, where
    /// equivalent full cycles = cumulative discharge / capacity. Every
    /// slot in which the factor actually bites counts as a derate
    /// event.
    Derate {
        /// Policy being derated.
        inner: Box<PolicyExpr>,
        /// Capacity fade per equivalent full cycle, in `[0, 1]`.
        fade: f64,
        /// Health floor in `[0, 1]` — derating never goes below it.
        floor: f64,
    },
    /// Two-threshold hysteresis: run `on` while the battery is healthy,
    /// switch to `off` once it drains to `low`, and only switch back
    /// after it recovers to `high` (no mode flapping between the two).
    /// Both branches tick their internal state every slot so a switch
    /// lands on a warm estimator.
    Hysteresis {
        /// Battery fraction that trips the policy into the `off` branch.
        low: f64,
        /// Battery fraction that re-arms the `on` branch (`> low`).
        high: f64,
        /// Branch used while armed (starts armed).
        on: Box<PolicyExpr>,
        /// Branch used after tripping.
        off: Box<PolicyExpr>,
    },
    /// Piecewise schedule over day indices: piece `k` is active from
    /// `pieces[k].0` (inclusive) until the next piece starts. The first
    /// piece must start at day 0 and starts must be strictly
    /// increasing. Only the active piece ticks its state.
    Scheduled {
        /// `(start day, policy)` pieces, strictly increasing starts.
        pieces: Vec<(u64, PolicyExpr)>,
    },
    /// Clamped composition: the inner duty, clamped into `[lo, hi]`.
    Clamp {
        /// Policy being clamped.
        inner: Box<PolicyExpr>,
        /// Lower duty bound.
        lo: f64,
        /// Upper duty bound (`>= lo`).
        hi: f64,
    },
}

/// A typed policy-construction failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// A parameter that must be a finite number was NaN or infinite.
    NonFinite {
        /// Which parameter.
        what: &'static str,
        /// The offending bits, as a value.
        value: f64,
    },
    /// A parameter fell outside its documented closed range.
    OutOfRange {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// An EWMA smoothing factor was not in `(0, 1]`.
    BadAlpha {
        /// The offending value.
        value: f64,
    },
    /// Hysteresis thresholds must satisfy `0 <= low < high <= 1`.
    BadHysteresisBand {
        /// The trip threshold.
        low: f64,
        /// The re-arm threshold.
        high: f64,
    },
    /// A schedule needs at least one piece.
    EmptySchedule,
    /// The first schedule piece must start at day 0.
    ScheduleMustStartAtZero {
        /// The actual first start day.
        start: u64,
    },
    /// Schedule starts must be strictly increasing.
    UnsortedSchedule {
        /// Index of the first out-of-order piece.
        index: usize,
    },
    /// A clamp range was empty (`lo > hi`).
    EmptyClampRange {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// The expression nests deeper than [`MAX_POLICY_DEPTH`].
    TooDeep {
        /// The depth at which validation gave up.
        depth: usize,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::NonFinite { what, value } => {
                write!(f, "{what} must be finite, got {value}")
            }
            PolicyError::OutOfRange {
                what,
                value,
                lo,
                hi,
            } => write!(f, "{what} must be in [{lo}, {hi}], got {value}"),
            PolicyError::BadAlpha { value } => {
                write!(f, "EWMA alpha must be in (0, 1], got {value}")
            }
            PolicyError::BadHysteresisBand { low, high } => {
                write!(
                    f,
                    "hysteresis band must satisfy 0 <= low < high <= 1, got [{low}, {high}]"
                )
            }
            PolicyError::EmptySchedule => write!(f, "schedule needs at least one piece"),
            PolicyError::ScheduleMustStartAtZero { start } => {
                write!(f, "first schedule piece must start at day 0, got {start}")
            }
            PolicyError::UnsortedSchedule { index } => {
                write!(
                    f,
                    "schedule starts must be strictly increasing (piece {index})"
                )
            }
            PolicyError::EmptyClampRange { lo, hi } => {
                write!(f, "clamp range [{lo}, {hi}] is empty")
            }
            PolicyError::TooDeep { depth } => {
                write!(f, "policy nests deeper than {depth} levels")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

fn check_unit(what: &'static str, v: f64) -> Result<(), PolicyError> {
    if !v.is_finite() {
        return Err(PolicyError::NonFinite { what, value: v });
    }
    if !(0.0..=1.0).contains(&v) {
        return Err(PolicyError::OutOfRange {
            what,
            value: v,
            lo: 0.0,
            hi: 1.0,
        });
    }
    Ok(())
}

fn check_alpha(v: f64) -> Result<(), PolicyError> {
    if !v.is_finite() || v <= 0.0 || v > 1.0 {
        return Err(PolicyError::BadAlpha { value: v });
    }
    Ok(())
}

impl PolicyExpr {
    /// A validated constant-duty policy (`duty` in `[0, 1]`).
    pub fn fixed(duty: f64) -> Result<PolicyExpr, PolicyError> {
        check_unit("fixed duty", duty)?;
        Ok(PolicyExpr::Fixed(duty))
    }

    /// A validated greedy two-mode policy.
    pub fn greedy(
        threshold: f64,
        duty_high: f64,
        duty_low: f64,
    ) -> Result<PolicyExpr, PolicyError> {
        check_unit("greedy threshold", threshold)?;
        check_unit("greedy duty_high", duty_high)?;
        check_unit("greedy duty_low", duty_low)?;
        Ok(PolicyExpr::Greedy {
            threshold,
            duty_high,
            duty_low,
        })
    }

    /// A validated energy-neutral policy (`alpha` in `(0, 1]`).
    pub fn energy_neutral(alpha: f64) -> Result<PolicyExpr, PolicyError> {
        check_alpha(alpha)?;
        Ok(PolicyExpr::EnergyNeutral { alpha })
    }

    /// A validated forecast-aware (per-slot-of-day EWMA) policy.
    pub fn forecast(alpha: f64) -> Result<PolicyExpr, PolicyError> {
        check_alpha(alpha)?;
        Ok(PolicyExpr::Forecast { alpha })
    }

    /// A validated battery-health derating wrapper.
    pub fn derate(inner: PolicyExpr, fade: f64, floor: f64) -> Result<PolicyExpr, PolicyError> {
        check_unit("derate fade", fade)?;
        check_unit("derate floor", floor)?;
        let expr = PolicyExpr::Derate {
            inner: Box::new(inner),
            fade,
            floor,
        };
        expr.validate()?;
        Ok(expr)
    }

    /// A validated hysteresis switch (`0 <= low < high <= 1`).
    pub fn hysteresis(
        low: f64,
        high: f64,
        on: PolicyExpr,
        off: PolicyExpr,
    ) -> Result<PolicyExpr, PolicyError> {
        if !low.is_finite() || !high.is_finite() || low < 0.0 || high > 1.0 || low >= high {
            return Err(PolicyError::BadHysteresisBand { low, high });
        }
        let expr = PolicyExpr::Hysteresis {
            low,
            high,
            on: Box::new(on),
            off: Box::new(off),
        };
        expr.validate()?;
        Ok(expr)
    }

    /// A validated piecewise day schedule.
    pub fn scheduled(pieces: Vec<(u64, PolicyExpr)>) -> Result<PolicyExpr, PolicyError> {
        let expr = PolicyExpr::Scheduled { pieces };
        expr.validate()?;
        Ok(expr)
    }

    /// A validated clamped composition (`0 <= lo <= hi <= 1`).
    pub fn clamp(inner: PolicyExpr, lo: f64, hi: f64) -> Result<PolicyExpr, PolicyError> {
        check_unit("clamp lo", lo)?;
        check_unit("clamp hi", hi)?;
        if lo > hi {
            return Err(PolicyError::EmptyClampRange { lo, hi });
        }
        let expr = PolicyExpr::Clamp {
            inner: Box::new(inner),
            lo,
            hi,
        };
        expr.validate()?;
        Ok(expr)
    }

    /// Validates every parameter in the tree. Wire decoding calls this
    /// at the parse boundary so a corrupted manifest record surfaces as
    /// a parse error, never as a silently-clamped simulation.
    pub fn validate(&self) -> Result<(), PolicyError> {
        self.validate_at(0)
    }

    fn validate_at(&self, depth: usize) -> Result<(), PolicyError> {
        if depth >= MAX_POLICY_DEPTH {
            return Err(PolicyError::TooDeep { depth });
        }
        match self {
            PolicyExpr::Fixed(d) => check_unit("fixed duty", *d),
            PolicyExpr::Greedy {
                threshold,
                duty_high,
                duty_low,
            } => {
                check_unit("greedy threshold", *threshold)?;
                check_unit("greedy duty_high", *duty_high)?;
                check_unit("greedy duty_low", *duty_low)
            }
            PolicyExpr::EnergyNeutral { alpha } | PolicyExpr::Forecast { alpha } => {
                check_alpha(*alpha)
            }
            PolicyExpr::Derate { inner, fade, floor } => {
                check_unit("derate fade", *fade)?;
                check_unit("derate floor", *floor)?;
                inner.validate_at(depth + 1)
            }
            PolicyExpr::Hysteresis { low, high, on, off } => {
                if !low.is_finite() || !high.is_finite() || *low < 0.0 || *high > 1.0 || low >= high
                {
                    return Err(PolicyError::BadHysteresisBand {
                        low: *low,
                        high: *high,
                    });
                }
                on.validate_at(depth + 1)?;
                off.validate_at(depth + 1)
            }
            PolicyExpr::Scheduled { pieces } => {
                if pieces.is_empty() {
                    return Err(PolicyError::EmptySchedule);
                }
                if pieces[0].0 != 0 {
                    return Err(PolicyError::ScheduleMustStartAtZero { start: pieces[0].0 });
                }
                for (k, w) in pieces.windows(2).enumerate() {
                    if w[1].0 <= w[0].0 {
                        return Err(PolicyError::UnsortedSchedule { index: k + 1 });
                    }
                }
                for (_, p) in pieces {
                    p.validate_at(depth + 1)?;
                }
                Ok(())
            }
            PolicyExpr::Clamp { inner, lo, hi } => {
                check_unit("clamp lo", *lo)?;
                check_unit("clamp hi", *hi)?;
                if lo > hi {
                    return Err(PolicyError::EmptyClampRange { lo: *lo, hi: *hi });
                }
                inner.validate_at(depth + 1)
            }
        }
    }

    /// Short label for corpus keys and reports. The primitives keep the
    /// exact historical `DutyPolicy` strings (`fixed`, `greedy`,
    /// `energy-neutral`) so pre-existing golden labels are unchanged;
    /// combinators compose recursively.
    pub fn label(&self) -> String {
        match self {
            PolicyExpr::Fixed(_) => "fixed".to_owned(),
            PolicyExpr::Greedy { .. } => "greedy".to_owned(),
            PolicyExpr::EnergyNeutral { .. } => "energy-neutral".to_owned(),
            PolicyExpr::Forecast { .. } => "forecast".to_owned(),
            PolicyExpr::Derate { inner, .. } => format!("derate.{}", inner.label()),
            PolicyExpr::Hysteresis { on, off, .. } => {
                format!("hyst.{}.{}", on.label(), off.label())
            }
            PolicyExpr::Scheduled { pieces } => {
                let mut out = String::from("sched");
                for (_, p) in pieces {
                    out.push('.');
                    out.push_str(&p.label());
                }
                out
            }
            PolicyExpr::Clamp { inner, .. } => format!("clamp.{}", inner.label()),
        }
    }
}

/// Per-node policy assignment for multi-node fleet simulations.
///
/// A fleet rarely wants one policy everywhere: gateway-adjacent nodes
/// can afford greed, fringe nodes need conservation. The assignment is
/// deterministic in the node index, so the same scenario description
/// always produces the same per-node policies.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyAssignment {
    /// Every node runs the same policy.
    Uniform(PolicyExpr),
    /// Node `i` runs `policies[i % policies.len()]`.
    RoundRobin(Vec<PolicyExpr>),
}

impl PolicyAssignment {
    /// The policy expression node `i` runs.
    ///
    /// # Panics
    ///
    /// Panics if a `RoundRobin` assignment is empty — [`validate`]
    /// (PolicyAssignment::validate) rejects that at construction.
    pub fn policy_for(&self, node: usize) -> &PolicyExpr {
        match self {
            PolicyAssignment::Uniform(p) => p,
            PolicyAssignment::RoundRobin(ps) => &ps[node % ps.len()],
        }
    }

    /// Validates the assignment and every policy in it.
    pub fn validate(&self) -> Result<(), PolicyError> {
        match self {
            PolicyAssignment::Uniform(p) => p.validate(),
            PolicyAssignment::RoundRobin(ps) => {
                if ps.is_empty() {
                    return Err(PolicyError::EmptySchedule);
                }
                for p in ps {
                    p.validate()?;
                }
                Ok(())
            }
        }
    }

    /// Short label for corpus keys: `uniform` labels as the policy
    /// itself, mixes join with `+`.
    pub fn label(&self) -> String {
        match self {
            PolicyAssignment::Uniform(p) => p.label(),
            PolicyAssignment::RoundRobin(ps) => ps
                .iter()
                .map(PolicyExpr::label)
                .collect::<Vec<_>>()
                .join("+"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accept_valid_parameters() {
        assert!(PolicyExpr::fixed(0.0).is_ok());
        assert!(PolicyExpr::fixed(1.0).is_ok());
        assert!(PolicyExpr::greedy(0.3, 0.9, 0.05).is_ok());
        assert!(PolicyExpr::energy_neutral(1.0).is_ok());
        assert!(PolicyExpr::forecast(0.2).is_ok());
        let inner = PolicyExpr::fixed(0.5).unwrap();
        assert!(PolicyExpr::derate(inner.clone(), 0.2, 0.3).is_ok());
        assert!(PolicyExpr::hysteresis(0.2, 0.6, inner.clone(), PolicyExpr::Fixed(0.01)).is_ok());
        assert!(
            PolicyExpr::scheduled(vec![(0, inner.clone()), (5, PolicyExpr::Fixed(0.1))]).is_ok()
        );
        assert!(PolicyExpr::clamp(inner, 0.1, 0.9).is_ok());
    }

    #[test]
    fn builders_reject_nan_and_out_of_range() {
        assert!(matches!(
            PolicyExpr::fixed(f64::NAN),
            Err(PolicyError::NonFinite { .. })
        ));
        assert!(matches!(
            PolicyExpr::fixed(1.5),
            Err(PolicyError::OutOfRange { .. })
        ));
        assert!(matches!(
            PolicyExpr::fixed(-0.1),
            Err(PolicyError::OutOfRange { .. })
        ));
        assert!(matches!(
            PolicyExpr::greedy(0.3, f64::INFINITY, 0.0),
            Err(PolicyError::NonFinite { .. })
        ));
        assert!(matches!(
            PolicyExpr::energy_neutral(0.0),
            Err(PolicyError::BadAlpha { .. })
        ));
        assert!(matches!(
            PolicyExpr::energy_neutral(-0.5),
            Err(PolicyError::BadAlpha { .. })
        ));
        assert!(matches!(
            PolicyExpr::energy_neutral(f64::NAN),
            Err(PolicyError::BadAlpha { .. })
        ));
        assert!(matches!(
            PolicyExpr::forecast(1.5),
            Err(PolicyError::BadAlpha { .. })
        ));
    }

    #[test]
    fn combinator_builders_reject_malformed_shapes() {
        let p = PolicyExpr::Fixed(0.5);
        assert!(matches!(
            PolicyExpr::hysteresis(0.6, 0.6, p.clone(), p.clone()),
            Err(PolicyError::BadHysteresisBand { .. })
        ));
        assert!(matches!(
            PolicyExpr::hysteresis(0.7, 0.2, p.clone(), p.clone()),
            Err(PolicyError::BadHysteresisBand { .. })
        ));
        assert!(matches!(
            PolicyExpr::scheduled(vec![]),
            Err(PolicyError::EmptySchedule)
        ));
        assert!(matches!(
            PolicyExpr::scheduled(vec![(3, p.clone())]),
            Err(PolicyError::ScheduleMustStartAtZero { start: 3 })
        ));
        assert!(matches!(
            PolicyExpr::scheduled(vec![(0, p.clone()), (5, p.clone()), (5, p.clone())]),
            Err(PolicyError::UnsortedSchedule { index: 2 })
        ));
        assert!(matches!(
            PolicyExpr::clamp(p.clone(), 0.8, 0.2),
            Err(PolicyError::EmptyClampRange { .. })
        ));
        assert!(matches!(
            PolicyExpr::derate(p, 1.5, 0.0),
            Err(PolicyError::OutOfRange { .. })
        ));
    }

    #[test]
    fn validation_bounds_nesting_depth() {
        let mut expr = PolicyExpr::Fixed(0.5);
        for _ in 0..MAX_POLICY_DEPTH {
            expr = PolicyExpr::Clamp {
                inner: Box::new(expr),
                lo: 0.0,
                hi: 1.0,
            };
        }
        assert!(matches!(expr.validate(), Err(PolicyError::TooDeep { .. })));
    }

    #[test]
    fn labels_keep_historical_primitive_strings() {
        assert_eq!(PolicyExpr::Fixed(0.3).label(), "fixed");
        assert_eq!(
            PolicyExpr::Greedy {
                threshold: 0.3,
                duty_high: 0.9,
                duty_low: 0.05
            }
            .label(),
            "greedy"
        );
        assert_eq!(
            PolicyExpr::EnergyNeutral { alpha: 0.01 }.label(),
            "energy-neutral"
        );
        let composed =
            PolicyExpr::derate(PolicyExpr::energy_neutral(0.05).unwrap(), 0.2, 0.5).unwrap();
        assert_eq!(composed.label(), "derate.energy-neutral");
    }

    #[test]
    fn assignment_round_robin_wraps_and_validates() {
        let mix =
            PolicyAssignment::RoundRobin(vec![PolicyExpr::Fixed(0.9), PolicyExpr::Fixed(0.1)]);
        assert!(mix.validate().is_ok());
        assert_eq!(mix.policy_for(0), &PolicyExpr::Fixed(0.9));
        assert_eq!(mix.policy_for(3), &PolicyExpr::Fixed(0.1));
        assert_eq!(mix.label(), "fixed+fixed");
        assert!(PolicyAssignment::RoundRobin(vec![]).validate().is_err());
    }
}
