//! # mns-policy — composable run-time energy-management policies
//!
//! The keynote's sensor-network vision (slides 35–40) hinges on
//! "policies for run-time energy/information management": a node that
//! harvests its own power must decide, slot by slot, how hard to work
//! from nothing but its local resource state. The original `DutyPolicy`
//! enum hard-wired three answers (fixed, greedy, energy-neutral) into
//! the harvesting loop; this crate grows that into an engine:
//!
//! * [`SlotCtx`] — everything a policy may observe about one decision
//!   slot: battery state, harvest power, time-of-day, cumulative
//!   discharge. Policies are pure over this context plus their own
//!   state, so evaluation order can never leak in.
//! * [`PolicyExpr`] — a *data* representation of a policy: three
//!   primitives byte-identical to the historical enum, plus combinators
//!   (forecast-aware EWMA, battery-health derating, hysteresis,
//!   scheduled switching, clamped composition). Being data, expressions
//!   fingerprint, travel the manifest wire format, and pin into the
//!   golden corpus like any other scenario parameter.
//! * [`Policy`] / [`Evaluator`] — the run-time side: an expression
//!   compiles into a stateful evaluator whose [`Policy::duty`] is called
//!   once per slot by the simulators in `mns-wsn`.
//! * [`PolicyAssignment`] — per-node heterogeneous policies for
//!   multi-node fleets (uniform, or a round-robin mix).
//! * [`reference`] — the retained historical [`reference::DutyPolicy`]
//!   enum. `mns_wsn::harvest::simulate_harvesting` still evaluates it
//!   with the original inline match; differential proptests pin the new
//!   engine's primitives byte-identical to it.
//!
//! Construction is validated ([`PolicyError`]): NaN parameters, duties
//! outside `[0, 1]` and non-positive EWMA smoothing factors are typed
//! errors at build time instead of silent clamps scattered through the
//! simulation loop. (Evaluators still clamp defensively — wire-decoded
//! expressions are re-validated at the parse boundary, but a clamp is
//! the right failure mode for a value that slips through.)
//!
//! ## Example
//!
//! ```
//! use mns_policy::{Policy, PolicyExpr, SlotCtx};
//!
//! // Energy-neutral tracking, derated as the battery ages, never below
//! // a 5 % duty floor.
//! let expr = PolicyExpr::derate(PolicyExpr::energy_neutral(0.05).unwrap(), 0.2, 0.5)
//!     .and_then(|p| PolicyExpr::clamp(p, 0.05, 1.0))
//!     .unwrap();
//! let mut eval = expr.evaluator();
//! let duty = eval.duty(&SlotCtx::example());
//! assert!((0.05..=1.0).contains(&duty));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
mod eval;
mod expr;
pub mod reference;

pub use ctx::SlotCtx;
pub use eval::{Evaluator, Policy};
pub use expr::{PolicyAssignment, PolicyError, PolicyExpr, MAX_POLICY_DEPTH};
