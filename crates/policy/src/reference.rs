//! The retained historical policy enum.
//!
//! [`DutyPolicy`] is the original fixed three-variant policy surface
//! that `mns_wsn::harvest::simulate_harvesting` evaluates inline, slot
//! by slot, exactly as it always has. It stays as the **reference
//! evaluator**: the expression engine's primitives
//! ([`PolicyExpr::Fixed`](crate::PolicyExpr::Fixed),
//! [`PolicyExpr::Greedy`](crate::PolicyExpr::Greedy),
//! [`PolicyExpr::EnergyNeutral`](crate::PolicyExpr::EnergyNeutral))
//! are pinned byte-identical to it by differential proptests
//! (`tests/policy_properties.rs`), the same oracle pattern the droplet
//! router and Cheng–Church engines use.

use crate::PolicyExpr;

/// Run-time energy management policies (historical enum).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DutyPolicy {
    /// Constant duty cycle regardless of energy state.
    Fixed(f64),
    /// Work hard while the battery is above `threshold` (fraction of
    /// capacity), throttle to `duty_low` below it.
    Greedy {
        /// Battery fraction separating the two modes.
        threshold: f64,
        /// Duty cycle above the threshold.
        duty_high: f64,
        /// Duty cycle below the threshold.
        duty_low: f64,
    },
    /// Energy-neutral operation: duty = EWMA(harvest power) / active
    /// power, clamped to `[0, 1]` and derated linearly once the battery
    /// falls below 20 % of capacity (brown-out protection).
    EnergyNeutral {
        /// EWMA smoothing factor in `(0, 1]`.
        alpha: f64,
    },
}

impl DutyPolicy {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DutyPolicy::Fixed(_) => "fixed",
            DutyPolicy::Greedy { .. } => "greedy",
            DutyPolicy::EnergyNeutral { .. } => "energy-neutral",
        }
    }
}

impl From<DutyPolicy> for PolicyExpr {
    /// Lifts the historical enum into the expression engine. The three
    /// primitive expressions evaluate byte-identically to the enum's
    /// inline reference loop, so this conversion never changes a
    /// simulation result.
    fn from(p: DutyPolicy) -> PolicyExpr {
        match p {
            DutyPolicy::Fixed(d) => PolicyExpr::Fixed(d),
            DutyPolicy::Greedy {
                threshold,
                duty_high,
                duty_low,
            } => PolicyExpr::Greedy {
                threshold,
                duty_high,
                duty_low,
            },
            DutyPolicy::EnergyNeutral { alpha } => PolicyExpr::EnergyNeutral { alpha },
        }
    }
}
