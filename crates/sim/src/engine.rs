//! The discrete-event engine.
//!
//! Events are stored in a binary heap keyed by `(time, sequence)`. The
//! sequence number is a monotonically increasing counter assigned at
//! scheduling time, which gives *FIFO ordering among simultaneous events* —
//! the property that makes model execution deterministic regardless of heap
//! internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A model driven by the [`Engine`].
///
/// The engine owns the event queue; the model owns all domain state. Each
/// dispatched event may schedule any number of future events through the
/// [`Scheduler`] handle.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event occurring at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, scheduler: &mut Scheduler<Self::Event>);
}

#[derive(Debug)]
struct QueuedEvent<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for QueuedEvent<E> {}

impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle through which a [`Model`] schedules future events.
///
/// A `Scheduler` is only obtainable inside [`Model::handle`]; initial events
/// are seeded through [`Engine::schedule`].
#[derive(Debug)]
pub struct Scheduler<E> {
    pending: Vec<(SimTime, E)>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time (causality
    /// violation).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {} while now is {}",
            at,
            self.now
        );
        self.pending.push((at, event));
    }

    /// Schedules `event` to fire `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        let at = self.now + delay;
        self.pending.push((at, event));
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

/// Deterministic discrete-event engine.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<QueuedEvent<E>>,
    now: SimTime,
    next_seq: u64,
    dispatched: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            dispatched: 0,
        }
    }

    /// Current virtual time (time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seeds an event before or between runs.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {} while now is {}",
            at,
            self.now
        );
        self.push(at, event);
    }

    fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueuedEvent {
            time: at,
            seq,
            event,
        });
    }

    /// Runs until the event queue is empty. Returns the number of events
    /// dispatched by this call.
    pub fn run<M: Model<Event = E>>(&mut self, model: &mut M) -> u64 {
        self.run_until(model, SimTime::MAX)
    }

    /// Runs until the queue is empty or the next event would occur after
    /// `horizon`. Events *at* the horizon are still dispatched. Returns the
    /// number of events dispatched by this call.
    pub fn run_until<M: Model<Event = E>>(&mut self, model: &mut M, horizon: SimTime) -> u64 {
        let mut count = 0;
        while let Some(head) = self.queue.peek() {
            if head.time > horizon {
                break;
            }
            let QueuedEvent { time, event, .. } =
                self.queue.pop().expect("peeked event must exist");
            debug_assert!(time >= self.now, "event queue produced out-of-order time");
            self.now = time;
            let mut scheduler = Scheduler {
                pending: Vec::new(),
                now: time,
            };
            model.handle(time, event, &mut scheduler);
            for (at, ev) in scheduler.pending {
                self.push(at, ev);
            }
            self.dispatched += 1;
            count += 1;
        }
        count
    }

    /// Dispatches exactly one event if one is pending. Returns `true` if an
    /// event was dispatched.
    pub fn step<M: Model<Event = E>>(&mut self, model: &mut M) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        let horizon = self.queue.peek().expect("non-empty queue").time;
        // Dispatch only the single earliest event: temporarily pop it.
        let QueuedEvent { time, event, .. } = self.queue.pop().expect("non-empty queue");
        self.now = time;
        let mut scheduler = Scheduler {
            pending: Vec::new(),
            now: time,
        };
        model.handle(time, event, &mut scheduler);
        for (at, ev) in scheduler.pending {
            self.push(at, ev);
        }
        self.dispatched += 1;
        let _ = horizon;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Ev {
        Tag(u32),
    }

    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, _s: &mut Scheduler<Ev>) {
            let Ev::Tag(t) = ev;
            self.seen.push((now.ticks(), t));
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut m = Recorder { seen: Vec::new() };
        let mut e = Engine::new();
        e.schedule(SimTime::from_ticks(30), Ev::Tag(3));
        e.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        e.schedule(SimTime::from_ticks(20), Ev::Tag(2));
        let n = e.run(&mut m);
        assert_eq!(n, 3);
        assert_eq!(m.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut m = Recorder { seen: Vec::new() };
        let mut e = Engine::new();
        for i in 0..100 {
            e.schedule(SimTime::from_ticks(5), Ev::Tag(i));
        }
        e.run(&mut m);
        let tags: Vec<u32> = m.seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_respects_horizon_inclusive() {
        let mut m = Recorder { seen: Vec::new() };
        let mut e = Engine::new();
        e.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        e.schedule(SimTime::from_ticks(20), Ev::Tag(2));
        e.schedule(SimTime::from_ticks(21), Ev::Tag(3));
        e.run_until(&mut m, SimTime::from_ticks(20));
        assert_eq!(m.seen, vec![(10, 1), (20, 2)]);
        assert_eq!(e.pending(), 1);
        // Resume to completion.
        e.run(&mut m);
        assert_eq!(m.seen.last(), Some(&(21, 3)));
    }

    struct Chain {
        hops: u32,
    }
    impl Model for Chain {
        type Event = Ev;
        fn handle(&mut self, _now: SimTime, ev: Ev, s: &mut Scheduler<Ev>) {
            let Ev::Tag(t) = ev;
            if t > 0 {
                self.hops += 1;
                s.schedule_in(7, Ev::Tag(t - 1));
            }
        }
    }

    #[test]
    fn models_can_schedule_followups() {
        let mut m = Chain { hops: 0 };
        let mut e = Engine::new();
        e.schedule(SimTime::ZERO, Ev::Tag(5));
        e.run(&mut m);
        assert_eq!(m.hops, 5);
        assert_eq!(e.now().ticks(), 35);
        assert_eq!(e.dispatched(), 6);
    }

    #[test]
    fn step_dispatches_single_event() {
        let mut m = Recorder { seen: Vec::new() };
        let mut e = Engine::new();
        e.schedule(SimTime::from_ticks(1), Ev::Tag(1));
        e.schedule(SimTime::from_ticks(2), Ev::Tag(2));
        assert!(e.step(&mut m));
        assert_eq!(m.seen.len(), 1);
        assert!(e.step(&mut m));
        assert!(!e.step(&mut m));
        assert_eq!(m.seen.len(), 2);
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn scheduling_in_the_past_panics() {
        let mut m = Recorder { seen: Vec::new() };
        let mut e = Engine::new();
        e.schedule(SimTime::from_ticks(10), Ev::Tag(1));
        e.run(&mut m);
        e.schedule(SimTime::from_ticks(5), Ev::Tag(2));
    }
}
