//! # mns-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the shared substrate for the event-driven simulators in the
//! micronano workspace (`mns-noc` flit-level network simulation and
//! `mns-wsn` sensor-network simulation). It provides:
//!
//! * a virtual-time type ([`SimTime`]) and duration arithmetic,
//! * a deterministic event engine ([`Engine`]) with FIFO tie-breaking for
//!   simultaneous events,
//! * reproducible random-number streams ([`rng::SeedStream`]) built on
//!   ChaCha8 so that every experiment in the workspace is bit-for-bit
//!   repeatable from a single `u64` seed, and
//! * online statistics ([`stats`]) — counters, Welford mean/variance,
//!   fixed-bin histograms and time-weighted averages — used by all
//!   simulators to report results.
//!
//! The engine is intentionally single-threaded: determinism and
//! reproducibility matter more than wall-clock speed for design-space
//! exploration, and the workloads in this workspace are small enough that a
//! tight sequential event loop wins anyway.
//!
//! ## Example
//!
//! A two-event "ping/pong" model:
//!
//! ```
//! use mns_sim::{Engine, Model, SimTime};
//!
//! struct PingPong { pings: u32 }
//!
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! enum Ev { Ping, Pong }
//!
//! impl Model for PingPong {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut mns_sim::Scheduler<Ev>) {
//!         match ev {
//!             Ev::Ping => {
//!                 self.pings += 1;
//!                 if self.pings < 3 {
//!                     sched.schedule(now + 10, Ev::Pong);
//!                 }
//!             }
//!             Ev::Pong => sched.schedule(now + 5, Ev::Ping),
//!         }
//!     }
//! }
//!
//! let mut model = PingPong { pings: 0 };
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::ZERO, Ev::Ping);
//! engine.run(&mut model);
//! assert_eq!(model.pings, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod rng;
pub mod stats;
mod time;

pub use engine::{Engine, Model, Scheduler};
pub use time::{SimDuration, SimTime};
