//! Reproducible random-number streams.
//!
//! Every stochastic component in the workspace draws from a
//! [`SeedStream`]: a splittable source of independent, named substreams.
//! Substream seeds are derived with SplitMix64 from the parent seed and a
//! label hash, so adding a new consumer never perturbs the draws of
//! existing consumers — the property that keeps experiment sweeps
//! comparable across code revisions.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 step; the standard 64-bit finalizer used to decorrelate
/// derived seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a label into a 64-bit value (FNV-1a).
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic factory for independent random streams.
///
/// ```
/// use mns_sim::rng::SeedStream;
/// use rand::Rng;
///
/// let seeds = SeedStream::new(42);
/// let mut traffic = seeds.stream("traffic");
/// let mut noise = seeds.stream("noise");
/// // Streams are independent and reproducible:
/// let a: u64 = traffic.gen();
/// let b: u64 = SeedStream::new(42).stream("traffic").gen();
/// assert_eq!(a, b);
/// let c: u64 = noise.gen();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    seed: u64,
}

impl SeedStream {
    /// Creates a seed stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedStream { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the substream named `label`.
    pub fn stream(&self, label: &str) -> ChaCha8Rng {
        let mut state = self.seed ^ hash_label(label);
        let s = splitmix64(&mut state);
        ChaCha8Rng::seed_from_u64(s)
    }

    /// Derives the `index`-th numbered substream under `label`; useful for
    /// per-node or per-trial generators.
    pub fn indexed_stream(&self, label: &str, index: u64) -> ChaCha8Rng {
        let mut state = self.seed ^ hash_label(label) ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = splitmix64(&mut state);
        ChaCha8Rng::seed_from_u64(s)
    }

    /// Derives a child `SeedStream`, for handing a whole subsystem its own
    /// seed space.
    pub fn child(&self, label: &str) -> SeedStream {
        let mut state = self.seed ^ hash_label(label);
        SeedStream {
            seed: splitmix64(&mut state),
        }
    }
}

/// Draws a standard-normal sample using the Box–Muller transform.
///
/// Kept here (rather than pulling in `rand_distr`) to stay within the
/// workspace's approved dependency set.
///
/// ```
/// use mns_sim::rng::{normal, SeedStream};
/// let mut rng = SeedStream::new(1).stream("n");
/// let x = normal(&mut rng, 0.0, 1.0);
/// assert!(x.is_finite());
/// ```
pub fn normal<R: rand::Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    // Box–Muller with a guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Draws an exponential sample with the given rate parameter `lambda`.
///
/// # Panics
///
/// Panics if `lambda` is not strictly positive.
pub fn exponential<R: rand::Rng>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

/// Draws a Poisson sample via inversion (suitable for small means) or
/// normal approximation for large means.
pub fn poisson<R: rand::Rng>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0, "poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation with continuity correction.
        let x = normal(rng, mean, mean.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        let u: f64 = rng.gen();
        p *= u;
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<u32> = SeedStream::new(7)
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = SeedStream::new(7)
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_decorrelate() {
        let a: u64 = SeedStream::new(7).stream("x").gen();
        let b: u64 = SeedStream::new(7).stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_differ() {
        let a: u64 = SeedStream::new(7).indexed_stream("node", 0).gen();
        let b: u64 = SeedStream::new(7).indexed_stream("node", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn child_streams_are_namespaced() {
        let root = SeedStream::new(7);
        let child = root.child("wsn");
        let a: u64 = root.stream("x").gen();
        let b: u64 = child.stream("x").gen();
        assert_ne!(a, b);
        assert_eq!(child, root.child("wsn"));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = SeedStream::new(3).stream("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SeedStream::new(3).stream("exp");
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = SeedStream::new(3).stream("poisson");
        let n = 10_000;
        let small = (0..n).map(|_| poisson(&mut rng, 3.0)).sum::<u64>() as f64 / n as f64;
        assert!((small - 3.0).abs() < 0.15, "small {small}");
        let large = (0..n).map(|_| poisson(&mut rng, 100.0)).sum::<u64>() as f64 / n as f64;
        assert!((large - 100.0).abs() < 1.0, "large {large}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
