//! Online statistics collected by the simulators.
//!
//! All accumulators are single-pass and numerically stable (Welford update
//! for mean/variance), so simulators can stream millions of observations
//! without retaining them.

use crate::time::SimTime;

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// ```
/// use mns_sim::stats::Summary;
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 6.0] { s.record(x); }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 4.0).abs() < 1e-12);
/// assert!((s.variance() - 8.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
///
/// ```
/// use mns_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(4), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Approximate quantile `q` in `[0, 1]` using bin midpoints; `None` if
    /// the histogram holds no in-range observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut cum = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.lo + (i as f64 + 0.5) * w);
            }
        }
        Some(self.hi - 0.5 * w)
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue length
/// or battery level over virtual time).
///
/// ```
/// use mns_sim::stats::TimeWeighted;
/// use mns_sim::SimTime;
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.set(SimTime::from_ticks(10), 4.0); // value 0 for 10 ticks
/// tw.set(SimTime::from_ticks(20), 0.0); // value 4 for 10 ticks
/// assert!((tw.average(SimTime::from_ticks(20)) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Updates the signal to `value` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous update.
    pub fn set(&mut self, at: SimTime, value: f64) {
        let dt = at.since(self.last_time).ticks() as f64;
        self.weighted_sum += self.last_value * dt;
        self.last_time = at;
        self.last_value = value;
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.last_value
    }

    /// Time-weighted average over `[start, until]`.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last update.
    pub fn average(&self, until: SimTime) -> f64 {
        let tail = until.since(self.last_time).ticks() as f64;
        let span = until.since(self.start).ticks() as f64;
        if span == 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * tail) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_empty_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        for x in [3.0, -1.0, 7.5] {
            s.record(x);
        }
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.5));
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &data {
            all.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for x in 0..100 {
            h.record(x as f64);
        }
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 10);
        }
        h.record(-1.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 102);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in 0..10 {
            h.record(x as f64);
        }
        let median = h.quantile(0.5).expect("non-empty");
        assert!((median - 4.5).abs() <= 1.0, "median {median}");
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn time_weighted_average_piecewise() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.set(SimTime::from_ticks(4), 6.0);
        // 2.0 for 4 ticks then 6.0 for 4 ticks → average 4.0 at t=8.
        assert!((tw.average(SimTime::from_ticks(8)) - 4.0).abs() < 1e-12);
        assert_eq!(tw.value(), 6.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(SimTime::from_ticks(5), 3.0);
        assert_eq!(tw.average(SimTime::from_ticks(5)), 3.0);
    }
}
