//! Virtual time for discrete-event simulation.
//!
//! [`SimTime`] is a monotone tick counter with no fixed physical unit: the
//! NoC simulator interprets one tick as one router cycle, the WSN simulator
//! as one millisecond. Keeping time integral makes event ordering exact and
//! the simulation deterministic — no floating-point comparison hazards.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in ticks since simulation start.
///
/// The physical meaning of one tick is chosen by the model using the engine.
///
/// ```
/// use mns_sim::SimTime;
/// let t = SimTime::ZERO + 25;
/// assert_eq!(t.ticks(), 25);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Elapsed ticks since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration, clamping at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// A span of virtual time in ticks.
///
/// ```
/// use mns_sim::{SimDuration, SimTime};
/// let d = SimDuration::from_ticks(10);
/// assert_eq!((SimTime::ZERO + d).ticks(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(ticks: u64) -> Self {
        SimDuration(ticks)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_ticks(5);
        let b = a + 7;
        assert!(b > a);
        assert_eq!(b.since(a).ticks(), 7);
        assert_eq!((b - a).ticks(), 7);
    }

    #[test]
    fn add_assign_variants() {
        let mut t = SimTime::ZERO;
        t += 3;
        t += SimDuration::from_ticks(4);
        assert_eq!(t.ticks(), 7);
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_ticks(2);
        assert_eq!((d + SimDuration::from_ticks(1)).ticks(), 3);
    }

    #[test]
    fn saturating_add_clamps() {
        let t = SimTime::MAX.saturating_add(SimDuration::from_ticks(10));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime::ZERO.since(SimTime::from_ticks(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime::from_ticks(3).to_string(), "t=3");
        assert_eq!(SimDuration::from_ticks(3).to_string(), "3 ticks");
    }
}
