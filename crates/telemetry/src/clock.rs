//! Pluggable time sources.
//!
//! Telemetry never reads ambient time directly: every timestamp comes
//! from the [`Clock`] installed at enable time. Two implementations
//! ship — [`WallClock`] for real profiling and [`VirtualClock`] for
//! deterministic tests, where "time" is a global tick counter advanced
//! by each read. Under the virtual clock the *structure* of a span tree
//! is reproducible at any worker count (tick values still depend on
//! thread interleaving, structure does not).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be cheap and
/// thread-safe: `now_ns` is called twice per span.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Current time in nanoseconds since an arbitrary origin.
    fn now_ns(&self) -> u64;
}

/// Real time, measured from the clock's creation instant.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic virtual time: a shared counter that advances by a
/// fixed step on every read. Wall-clock noise cannot enter a trace
/// taken under this clock, which makes span *structure* golden-testable.
#[derive(Debug)]
pub struct VirtualClock {
    step: u64,
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock advancing `step` "nanoseconds" per read.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero (timestamps must strictly increase).
    pub fn new(step: u64) -> Self {
        assert!(step > 0, "virtual clock step must be positive");
        VirtualClock {
            step,
            ticks: AtomicU64::new(0),
        }
    }

    /// Reads taken so far times the step (the next value returned).
    pub fn elapsed_ns(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

impl Default for VirtualClock {
    /// One microsecond per read.
    fn default() -> Self {
        VirtualClock::new(1_000)
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.ticks.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_advances_per_read() {
        let c = VirtualClock::new(7);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 7);
        assert_eq!(c.now_ns(), 14);
        assert_eq!(c.elapsed_ns(), 21);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_is_rejected() {
        let _ = VirtualClock::new(0);
    }
}
