//! Profile exporters: Chrome trace JSON, flamegraph folded stacks, and
//! the plain-text metrics snapshot (see
//! [`MetricsSnapshot::to_text`](crate::MetricsSnapshot::to_text)).
//!
//! * [`chrome_trace`] emits the Trace Event Format (`B`/`E` duration
//!   events) loadable by `chrome://tracing` / Perfetto. Each telemetry
//!   track becomes one Chrome `tid`, so scenarios line up as lanes.
//! * [`folded_stacks`] emits `stack;frames value` lines consumable by
//!   `flamegraph.pl` / inferno, valued by span *self time*.
//! * [`validate_chrome_trace`] re-parses an exported trace with the
//!   built-in JSON reader and checks begin/end pairing — the CI smoke
//!   gate for exporter drift.

use std::collections::BTreeMap;

use crate::json;
use crate::span::{SpanNode, Trace, UNTRACKED};

/// Chrome `tid` for a telemetry track (tid 0 is the untracked lane).
fn tid_of(track: u64) -> u64 {
    if track == UNTRACKED {
        0
    } else {
        track.saturating_add(1)
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_event(out: &mut String, name: &str, phase: char, ts_ns: u64, tid: u64) {
    out.push_str("  {\"name\":\"");
    escape_into(name, out);
    // Trace-event timestamps are microseconds; keep nanosecond
    // resolution with a fractional part.
    out.push_str(&format!(
        "\",\"cat\":\"mns\",\"ph\":\"{phase}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{tid}}}",
        ts_ns / 1_000,
        ts_ns % 1_000
    ));
}

fn chrome_events(node: &SpanNode, tid: u64, first: &mut bool, out: &mut String) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    push_event(out, node.name, 'B', node.start_ns, tid);
    for c in &node.children {
        chrome_events(c, tid, first, out);
    }
    out.push_str(",\n");
    push_event(out, node.name, 'E', node.end_ns, tid);
}

/// Renders the trace in Chrome Trace Event Format (a JSON array of
/// `B`/`E` duration events). Load the output in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for root in &trace.roots {
        chrome_events(root, tid_of(root.track), &mut first, &mut out);
    }
    out.push_str("\n]\n");
    out
}

fn fold_into(node: &SpanNode, prefix: &str, acc: &mut BTreeMap<String, u64>) {
    let path = if prefix.is_empty() {
        node.name.to_owned()
    } else {
        format!("{prefix};{}", node.name)
    };
    *acc.entry(path.clone()).or_insert(0) += node.self_ns();
    for c in &node.children {
        fold_into(c, &path, acc);
    }
}

/// Renders the trace as flamegraph folded stacks: one
/// `frame;frame;frame value` line per distinct stack, valued by summed
/// self time in clock nanoseconds, sorted by stack. Identical stacks
/// from different tracks aggregate, which is what a flamegraph wants.
pub fn folded_stacks(trace: &Trace) -> String {
    let mut acc: BTreeMap<String, u64> = BTreeMap::new();
    for root in &trace.roots {
        fold_into(root, "", &mut acc);
    }
    let mut out = String::new();
    for (stack, value) in acc {
        out.push_str(&format!("{stack} {value}\n"));
    }
    out
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events in the file.
    pub events: usize,
    /// Matched begin/end pairs (spans).
    pub spans: usize,
    /// Distinct `tid` lanes seen.
    pub tracks: usize,
}

/// Parses an exported Chrome trace and verifies it: the document is a
/// JSON array; every event has `name`/`cat`/`ph`/`ts`/`pid`/`tid`; and
/// per `tid` the `B`/`E` events pair up LIFO with matching names and
/// non-decreasing timestamps — i.e. spans nest properly.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc.as_array().ok_or("trace is not a JSON array")?;
    let mut stacks: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| format!("event {i}: missing `{key}`"))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: `name` is not a string"))?;
        field("cat")?;
        field("pid")?;
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: `ph` is not a string"))?;
        let ts = field("ts")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: `ts` is not a number"))?;
        let tid = field("tid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: `tid` is not a number"))? as u64;
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => stack.push((name.to_owned(), ts)),
            "E" => {
                let (open_name, open_ts) = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: `E` for `{name}` with no open span"))?;
                if open_name != name {
                    return Err(format!(
                        "event {i}: `E` for `{name}` but `{open_name}` is open (bad nesting)"
                    ));
                }
                if ts < open_ts {
                    return Err(format!("event {i}: span `{name}` ends before it starts"));
                }
                spans += 1;
            }
            other => return Err(format!("event {i}: unsupported phase `{other}`")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("tid {tid}: span `{name}` never ends"));
        }
    }
    Ok(ChromeTraceSummary {
        events: events.len(),
        spans,
        tracks: stacks.len(),
    })
}

/// Convenience: checks that every folded line is `stack value` with a
/// parseable value, returning the line count.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_folded(text: &str) -> Result<usize, String> {
    for (i, line) in text.lines().enumerate() {
        let Some((stack, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no value field in `{line}`", i + 1));
        };
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("line {}: empty frame in `{line}`", i + 1));
        }
        if value.parse::<u64>().is_err() {
            return Err(format!("line {}: bad value in `{line}`", i + 1));
        }
    }
    Ok(text.lines().count())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            roots: vec![
                SpanNode {
                    name: "scenario.noc",
                    track: 0,
                    start_ns: 0,
                    end_ns: 5_000,
                    children: vec![
                        SpanNode {
                            name: "noc.synthesize",
                            track: 0,
                            start_ns: 500,
                            end_ns: 2_500,
                            children: Vec::new(),
                        },
                        SpanNode {
                            name: "noc.route",
                            track: 0,
                            start_ns: 2_500,
                            end_ns: 4_000,
                            children: Vec::new(),
                        },
                    ],
                },
                SpanNode {
                    name: "runner.run_batch",
                    track: UNTRACKED,
                    start_ns: 0,
                    end_ns: 9_000,
                    children: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn chrome_trace_round_trips() {
        let text = chrome_trace(&sample_trace());
        let summary = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(summary.events, 8);
        assert_eq!(summary.spans, 4);
        assert_eq!(summary.tracks, 2);
    }

    #[test]
    fn chrome_trace_escapes_and_timestamps() {
        let trace = Trace {
            roots: vec![SpanNode {
                name: "we\"ird",
                track: 3,
                start_ns: 1_234_567,
                end_ns: 2_000_001,
                children: Vec::new(),
            }],
        };
        let text = chrome_trace(&trace);
        assert!(text.contains("we\\\"ird"));
        assert!(text.contains("\"ts\":1234.567"));
        assert!(text.contains("\"ts\":2000.001"));
        assert!(text.contains("\"tid\":4"));
        validate_chrome_trace(&text).expect("valid");
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let text = folded_stacks(&sample_trace());
        assert_eq!(validate_folded(&text).expect("valid folded"), 4);
        // Root self time: 5000 − (2000 + 1500) = 1500.
        assert!(text.contains("scenario.noc 1500\n"));
        assert!(text.contains("scenario.noc;noc.synthesize 2000\n"));
        assert!(text.contains("scenario.noc;noc.route 1500\n"));
        assert!(text.contains("runner.run_batch 9000\n"));
    }

    #[test]
    fn validator_rejects_unbalanced_traces() {
        let unbalanced = r#"[
  {"name":"a","cat":"mns","ph":"B","ts":0,"pid":1,"tid":1}
]"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("never ends"));
        let crossed = r#"[
  {"name":"a","cat":"mns","ph":"B","ts":0,"pid":1,"tid":1},
  {"name":"b","cat":"mns","ph":"B","ts":1,"pid":1,"tid":1},
  {"name":"a","cat":"mns","ph":"E","ts":2,"pid":1,"tid":1},
  {"name":"b","cat":"mns","ph":"E","ts":3,"pid":1,"tid":1}
]"#;
        assert!(validate_chrome_trace(crossed)
            .unwrap_err()
            .contains("bad nesting"));
    }

    #[test]
    fn folded_validator_rejects_malformed_lines() {
        assert!(validate_folded("a;b 12\n").is_ok());
        assert!(validate_folded("a;;b 12\n").is_err());
        assert!(validate_folded("a twelve\n").is_err());
        assert!(validate_folded("loner\n").is_err());
    }
}
