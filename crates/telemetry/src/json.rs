//! A minimal JSON reader for validating exported traces.
//!
//! The workspace is dependency-free, so the Chrome-trace round-trip
//! check (emit → parse → verify begin/end nesting) needs its own
//! parser. This is a strict recursive-descent reader for the subset of
//! JSON the exporter emits — objects, arrays, strings with `\"`/`\\`/
//! `\n`/`\t`/`\u` escapes, numbers, booleans and null — kept small and
//! obvious rather than fast.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order is not preserved; keys are unique).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns [`JsonError`] on the first syntax violation.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key, value).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"[{"name":"a","ts":1.5,"ok":true,"tags":[1,2,3]},null]"#;
        let v = parse(doc).expect("parses");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").and_then(Json::as_str), Some("a"));
        assert_eq!(arr[0].get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(arr[1], Json::Null);
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1] tail").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
    }
}
