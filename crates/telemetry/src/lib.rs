//! # mns-telemetry — deterministic tracing and metrics for the design kit
//!
//! Every pipeline in this workspace — lab-on-chip compiles, NoC sweeps,
//! WSN simulations, GRN screens, the parallel scenario runner — is
//! instrumented against this crate. It answers "where did the time go"
//! without ever being allowed to answer "differently than last run":
//!
//! * **Off by default, near-nop when off.** Instrumentation sites cost
//!   one relaxed atomic load when telemetry is disabled; no locks, no
//!   allocation, no clock reads. The golden conformance corpus is
//!   byte-identical with the crate linked in.
//! * **Pluggable [`Clock`]**: [`WallClock`] for real profiling,
//!   [`VirtualClock`] for tests — under the virtual clock the *structure*
//!   of a span tree is reproducible at any worker count, so traces can
//!   be golden-tested (see [`Trace::structure`]).
//! * **Three exporters**: Chrome-trace JSON ([`chrome_trace`]) for
//!   `chrome://tracing`/Perfetto, flamegraph folded stacks
//!   ([`folded_stacks`]), and a plain-text metrics snapshot
//!   ([`MetricsSnapshot::to_text`]) for regression diffs — each with a
//!   matching validator used by CI.
//!
//! ## Usage
//!
//! ```
//! use std::sync::Arc;
//!
//! mns_telemetry::enable(Arc::new(mns_telemetry::VirtualClock::default()));
//! {
//!     let _run = mns_telemetry::span("demo.run");
//!     let _stage = mns_telemetry::span("demo.stage");
//!     mns_telemetry::counter_add("demo.items", 3);
//! }
//! let trace = mns_telemetry::take_trace();
//! assert_eq!(trace.structure(), "[untracked] demo.run\n  demo.stage\n");
//! assert_eq!(mns_telemetry::snapshot().counter("demo.items"), 3);
//! mns_telemetry::disable();
//! mns_telemetry::reset();
//! ```
//!
//! State is process-wide (instrumented library code cannot thread a
//! handle through every call), so tests that enable telemetry must
//! serialize against each other and `reset()` between runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

pub use clock::{Clock, VirtualClock, WallClock};
pub use export::{
    chrome_trace, folded_stacks, validate_chrome_trace, validate_folded, ChromeTraceSummary,
};
pub use metrics::{validate_snapshot_text, Histogram, MetricsSnapshot};
pub use span::{Span, SpanNode, Trace, UNTRACKED};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CLOCK: RwLock<Option<Arc<dyn Clock>>> = RwLock::new(None);

/// Turns telemetry on with the given time source. Spans/counters
/// recorded from this point are collected until [`disable`].
pub fn enable(clock: Arc<dyn Clock>) {
    *CLOCK.write().expect("telemetry clock lock") = Some(clock);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns telemetry off. Spans already open keep recording until their
/// guards drop (the clock stays installed); new sites become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether instrumentation sites are currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Current clock reading, if a clock is installed.
pub(crate) fn clock_now() -> Option<u64> {
    CLOCK
        .read()
        .expect("telemetry clock lock")
        .as_ref()
        .map(|c| c.now_ns())
}

/// Opens a span named `name`, nested under the thread's current span
/// (if any). Returns an inert guard when telemetry is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return span::noop_span();
    }
    match clock_now() {
        Some(now) => span::open_span(name, now),
        None => span::noop_span(),
    }
}

/// Opens a *detached root* span on logical lane `track` (e.g. a
/// scenario's submission index). Children nest normally; the finished
/// subtree flushes to the collector independent of any enclosing span,
/// so serial and parallel executions yield the same tree shape.
#[inline]
pub fn task_span(name: &'static str, track: u64) -> Span {
    if !is_enabled() {
        return span::noop_span();
    }
    match clock_now() {
        Some(now) => span::open_task_span(name, track, now),
        None => span::noop_span(),
    }
}

/// Adds `delta` to the named counter (no-op while disabled).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if is_enabled() {
        metrics::counter_add(name, delta);
    }
}

/// Records one histogram observation (no-op while disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    if is_enabled() {
        metrics::observe(name, value);
    }
}

/// Drains every completed root span into a canonically ordered
/// [`Trace`]. Spans still open stay pending and appear in a later take.
pub fn take_trace() -> Trace {
    span::drain_trace()
}

/// Copies the current counters and histograms.
pub fn snapshot() -> MetricsSnapshot {
    metrics::snapshot()
}

/// Clears collected spans, counters and histograms. Call between runs,
/// with no spans open, to start a fresh profile.
pub fn reset() {
    span::clear_finished();
    metrics::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The crate-level tests share global state with doctests and each
    // other; serialize them.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn isolated<T>(f: impl FnOnce() -> T) -> T {
        let _guard = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        disable();
        reset();
        let out = f();
        disable();
        reset();
        out
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        isolated(|| {
            let s = span("off.span");
            assert!(!s.is_recording());
            drop(s);
            counter_add("off.counter", 1);
            observe("off.hist", 1);
            assert!(take_trace().is_empty());
            assert!(snapshot().is_empty());
        });
    }

    #[test]
    fn spans_nest_and_flush() {
        isolated(|| {
            enable(Arc::new(VirtualClock::default()));
            {
                let _a = span("a");
                {
                    let _b = span("b");
                }
                let _c = span("c");
            }
            let trace = take_trace();
            assert_eq!(trace.structure(), "[untracked] a\n  b\n  c\n");
            let a = &trace.roots[0];
            assert!(a.duration_ns() > 0);
            assert!(a.children[0].start_ns >= a.start_ns);
            assert!(a.children[1].end_ns <= a.end_ns);
        });
    }

    #[test]
    fn task_spans_detach_from_enclosing_spans() {
        isolated(|| {
            enable(Arc::new(VirtualClock::default()));
            {
                let _batch = span("batch");
                {
                    let _t = task_span("task", 7);
                    let _inner = span("inner");
                }
            }
            let trace = take_trace();
            // Two roots: the task (track 7) and the batch — the task is
            // *not* a child of the batch.
            assert_eq!(trace.roots.len(), 2);
            assert_eq!(
                trace.structure(),
                "[track 7] task\n  inner\n[untracked] batch\n"
            );
        });
    }

    #[test]
    fn trace_order_is_track_order_not_completion_order() {
        isolated(|| {
            enable(Arc::new(VirtualClock::default()));
            drop(task_span("late", 9));
            drop(task_span("early", 2));
            let trace = take_trace();
            assert_eq!(trace.roots[0].track, 2);
            assert_eq!(trace.roots[1].track, 9);
        });
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        isolated(|| {
            enable(Arc::new(VirtualClock::default()));
            counter_add("x.count", 2);
            counter_add("x.count", 3);
            observe("x.ns", 8);
            observe("x.ns", 24);
            let snap = snapshot();
            assert_eq!(snap.counter("x.count"), 5);
            let h = &snap.histograms["x.ns"];
            assert_eq!(h.count, 2);
            assert_eq!(h.sum, 32);
            metrics::validate_snapshot_text(&snap.to_text()).expect("valid snapshot text");
        });
    }

    #[test]
    fn cross_thread_spans_collect() {
        isolated(|| {
            enable(Arc::new(VirtualClock::default()));
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    scope.spawn(move || {
                        let _s = task_span("worker.task", t);
                        let _inner = span("worker.inner");
                    });
                }
            });
            let trace = take_trace();
            assert_eq!(trace.roots.len(), 4);
            let tracks: Vec<u64> = trace.roots.iter().map(|r| r.track).collect();
            assert_eq!(tracks, vec![0, 1, 2, 3]);
            for r in &trace.roots {
                assert_eq!(r.children.len(), 1);
            }
        });
    }

    #[test]
    fn exporters_round_trip_a_real_trace() {
        isolated(|| {
            enable(Arc::new(VirtualClock::default()));
            {
                let _t = task_span("scenario", 0);
                let _a = span("stage.a");
            }
            let trace = take_trace();
            let chrome = chrome_trace(&trace);
            let summary = validate_chrome_trace(&chrome).expect("valid chrome trace");
            assert_eq!(summary.spans, trace.span_count());
            let folded = folded_stacks(&trace);
            assert_eq!(
                validate_folded(&folded).expect("valid folded"),
                trace.span_count()
            );
        });
    }
}
