//! Named counters and histograms.
//!
//! Counters are monotonic `u64` accumulators; histograms record value
//! distributions in power-of-two buckets with exact count/sum/min/max.
//! Both live in process-wide registries keyed by name (`BTreeMap`, so
//! every snapshot iterates in one deterministic order). When telemetry
//! is disabled the record functions return before touching any lock or
//! allocating the name.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Power-of-two bucket count: bucket `i` holds values whose bit length
/// is `i` (bucket 0 is the value zero, the last bucket is everything
/// with 63+ significant bits).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket histogram with exact summary statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Power-of-two buckets by bit length of the value.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Adds one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket.min(HISTOGRAM_BUCKETS - 1)] += 1;
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<String, Histogram>> = Mutex::new(BTreeMap::new());

pub(crate) fn counter_add(name: &str, delta: u64) {
    let mut counters = COUNTERS.lock().expect("counter registry lock");
    match counters.get_mut(name) {
        Some(v) => *v = v.saturating_add(delta),
        None => {
            counters.insert(name.to_owned(), delta);
        }
    }
}

pub(crate) fn observe(name: &str, value: u64) {
    let mut hists = HISTOGRAMS.lock().expect("histogram registry lock");
    match hists.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = Histogram::default();
            h.record(value);
            hists.insert(name.to_owned(), h);
        }
    }
}

/// A point-in-time copy of every counter and histogram, in name order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// One counter's value (0 when absent — a counter never incremented
    /// is indistinguishable from one at zero).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Plain-text rendering, one metric per line, stable ordering —
    /// the unit of regression diffing:
    ///
    /// ```text
    /// counter runner.executed 23
    /// hist runner.evaluate_ns count=23 sum=412345 min=102 max=99021 mean=17928.04
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("# mns-telemetry metrics snapshot v1\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "hist {name} count={} sum={} min={} max={} mean={:.2}\n",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean()
            ));
        }
        out
    }

    /// Folds another snapshot into this one: counters are summed
    /// (saturating), histograms merged bucket-wise. Associative and
    /// order-insensitive, so per-shard snapshots from worker processes
    /// merge to the same aggregate in any order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Lossless wire rendering for cross-process metrics merge. Unlike
    /// [`to_text`](MetricsSnapshot::to_text) (a human/regression-diff
    /// format that drops buckets), this round-trips through
    /// [`from_wire`](MetricsSnapshot::from_wire) exactly: histogram
    /// lines carry count/sum/min/max plus sparse `bucket:count` pairs.
    /// Metric names must not contain whitespace (no name in this
    /// workspace does; names are dotted identifiers).
    pub fn to_wire(&self) -> String {
        let mut out = String::from("# mns-telemetry metrics wire v1\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "hist {name} {} {} {} {}",
                h.count, h.sum, h.min, h.max
            ));
            for (i, &b) in h.buckets.iter().enumerate() {
                if b != 0 {
                    out.push_str(&format!(" {i}:{b}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses a rendering produced by [`to_wire`](MetricsSnapshot::to_wire).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_wire(text: &str) -> Result<MetricsSnapshot, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("# mns-telemetry metrics wire v1") => {}
            other => return Err(format!("bad wire header: {other:?}")),
        }
        let mut snap = MetricsSnapshot::default();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("counter") => {
                    let name = fields
                        .next()
                        .ok_or_else(|| format!("line {lineno}: counter without name"))?;
                    let value: u64 = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("line {lineno}: bad counter value"))?;
                    if fields.next().is_some() {
                        return Err(format!("line {lineno}: trailing counter tokens"));
                    }
                    let slot = snap.counters.entry(name.to_owned()).or_insert(0);
                    *slot = slot.saturating_add(value);
                }
                Some("hist") => {
                    let name = fields
                        .next()
                        .ok_or_else(|| format!("line {lineno}: hist without name"))?;
                    let mut summary = [0u64; 4];
                    for slot in &mut summary {
                        *slot = fields
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("line {lineno}: bad hist summary"))?;
                    }
                    let mut h = Histogram {
                        count: summary[0],
                        sum: summary[1],
                        min: summary[2],
                        max: summary[3],
                        buckets: [0; HISTOGRAM_BUCKETS],
                    };
                    for pair in fields {
                        let (bucket, count) = pair
                            .split_once(':')
                            .ok_or_else(|| format!("line {lineno}: bad bucket `{pair}`"))?;
                        let bucket: usize = bucket
                            .parse()
                            .map_err(|_| format!("line {lineno}: bad bucket index `{pair}`"))?;
                        if bucket >= HISTOGRAM_BUCKETS {
                            return Err(format!("line {lineno}: bucket {bucket} out of range"));
                        }
                        h.buckets[bucket] = count
                            .parse()
                            .map_err(|_| format!("line {lineno}: bad bucket count `{pair}`"))?;
                    }
                    snap.histograms
                        .entry(name.to_owned())
                        .or_default()
                        .merge(&h);
                }
                _ => return Err(format!("line {lineno}: unknown wire record `{line}`")),
            }
        }
        Ok(snap)
    }
}

/// Checks that `text` is a well-formed snapshot rendering and returns
/// the number of metric lines.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_snapshot_text(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(header) if header.starts_with("# mns-telemetry metrics snapshot") => {}
        other => return Err(format!("bad snapshot header: {other:?}")),
    }
    let mut metrics = 0usize;
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.first() {
            Some(&"counter") => {
                if fields.len() != 3 || fields[2].parse::<u64>().is_err() {
                    return Err(format!("line {}: bad counter line `{line}`", i + 2));
                }
            }
            Some(&"hist") => {
                if fields.len() != 7 {
                    return Err(format!("line {}: bad hist line `{line}`", i + 2));
                }
                for (field, key) in fields[2..6].iter().zip(["count", "sum", "min", "max"]) {
                    let ok = field
                        .strip_prefix(key)
                        .and_then(|rest| rest.strip_prefix('='))
                        .is_some_and(|v| v.parse::<u64>().is_ok());
                    if !ok {
                        return Err(format!("line {}: bad `{key}` in `{line}`", i + 2));
                    }
                }
            }
            _ => return Err(format!("line {}: unknown record `{line}`", i + 2)),
        }
        metrics += 1;
    }
    Ok(metrics)
}

pub(crate) fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: COUNTERS.lock().expect("counter registry lock").clone(),
        histograms: HISTOGRAMS.lock().expect("histogram registry lock").clone(),
    }
}

pub(crate) fn clear() {
    COUNTERS.lock().expect("counter registry lock").clear();
    HISTOGRAMS.lock().expect("histogram registry lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[10], 1); // 1000
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::default();
        a.record(4);
        let mut b = Histogram::default();
        b.record(16);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 20);
        assert_eq!(a.min, 4);
        assert_eq!(a.max, 16);
    }

    #[test]
    fn snapshot_text_round_trip_validates() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.b".to_owned(), 7);
        let mut h = Histogram::default();
        h.record(3);
        snap.histograms.insert("c.d_ns".to_owned(), h);
        let text = snap.to_text();
        assert_eq!(validate_snapshot_text(&text), Ok(2));
        assert!(validate_snapshot_text("garbage").is_err());
        assert!(
            validate_snapshot_text("# mns-telemetry metrics snapshot v1\ncounter x y\n").is_err()
        );
    }

    #[test]
    fn empty_histogram_mean_is_nan() {
        assert!(Histogram::default().mean().is_nan());
    }

    #[test]
    fn wire_format_round_trips_losslessly() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("runner.executed".to_owned(), 23);
        let mut h = Histogram::default();
        for v in [0u64, 1, 7, 1000, u64::MAX] {
            h.record(v);
        }
        snap.histograms.insert("runner.evaluate_ns".to_owned(), h);
        // An empty histogram (min = u64::MAX sentinel) must survive too.
        snap.histograms
            .insert("runner.queue_wait_ns".to_owned(), Histogram::default());
        let wire = snap.to_wire();
        let back = MetricsSnapshot::from_wire(&wire).expect("wire parses");
        assert_eq!(back, snap, "wire format must be lossless");
        assert!(MetricsSnapshot::from_wire("garbage").is_err());
        assert!(MetricsSnapshot::from_wire("# mns-telemetry metrics wire v1\nhist x 1\n").is_err());
    }

    #[test]
    fn snapshot_merge_is_order_insensitive() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("n".to_owned(), 2);
        let mut ha = Histogram::default();
        ha.record(4);
        a.histograms.insert("h".to_owned(), ha);

        let mut b = MetricsSnapshot::default();
        b.counters.insert("n".to_owned(), 3);
        b.counters.insert("m".to_owned(), 1);
        let mut hb = Histogram::default();
        hb.record(16);
        b.histograms.insert("h".to_owned(), hb);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("n"), 5);
        assert_eq!(ab.counter("m"), 1);
        assert_eq!(ab.histograms["h"].count, 2);
        assert_eq!(ab.histograms["h"].sum, 20);
    }
}
