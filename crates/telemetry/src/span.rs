//! Hierarchical spans over a thread-local span stack.
//!
//! A [`Span`] guard marks the extent of one pipeline stage. Guards nest
//! lexically: a span opened while another is live on the same thread
//! becomes its child. Completed *root* spans (no parent, or detached
//! task spans) are flushed to a process-wide collector that
//! [`take_trace`](crate::take_trace) drains into a [`Trace`].
//!
//! ## Tracks
//!
//! A root span may carry a *track* — a caller-chosen logical lane (the
//! scenario submission index, in the runner). Tracks make traces
//! *structurally deterministic* under parallel execution: the collector
//! orders roots by track, not by completion time, so the same batch
//! yields the same tree shape at any worker count.

use std::cell::RefCell;
use std::sync::Mutex;

/// Track value for spans not assigned to any logical lane.
pub const UNTRACKED: u64 = u64::MAX;

/// One completed span: a named interval with nested children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Stage name (static so disabled telemetry allocates nothing).
    pub name: &'static str,
    /// Logical lane of the owning root span ([`UNTRACKED`] if none).
    pub track: u64,
    /// Start timestamp (clock nanoseconds).
    pub start_ns: u64,
    /// End timestamp (clock nanoseconds).
    pub end_ns: u64,
    /// Child spans, in completion order (deterministic: children on one
    /// thread complete in lexical order).
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Inclusive duration in clock nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Duration minus the time covered by children (folded-stack value).
    pub fn self_ns(&self) -> u64 {
        let nested: u64 = self.children.iter().map(SpanNode::duration_ns).sum();
        self.duration_ns().saturating_sub(nested)
    }

    /// This span plus all descendants.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::span_count)
            .sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanNode::depth).max().unwrap_or(0)
    }

    fn structure_into(&self, indent: usize, out: &mut String) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(self.name);
        out.push('\n');
        for c in &self.children {
            c.structure_into(indent + 1, out);
        }
    }
}

/// A completed trace: every root span recorded since the last drain,
/// ordered deterministically (by track, then name, then shape).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Root spans in canonical order.
    pub roots: Vec<SpanNode>,
}

impl Trace {
    /// Whether the trace holds no spans at all.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total spans across every root.
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(SpanNode::span_count).sum()
    }

    /// Canonical *structure* rendering: names and nesting only, no
    /// timestamps. Two runs of the same deterministic workload produce
    /// the same structure at any worker count under the virtual clock —
    /// this string is the golden-test unit.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            if r.track == UNTRACKED {
                out.push_str("[untracked] ");
            } else {
                out.push_str(&format!("[track {}] ", r.track));
            }
            let mut block = String::new();
            r.structure_into(0, &mut block);
            out.push_str(block.trim_start());
        }
        out
    }
}

/// A span in flight on some thread's stack.
struct Pending {
    name: &'static str,
    track: u64,
    start_ns: u64,
    /// Detached spans flush to the collector even when a parent is live
    /// (used for per-scenario task spans so serial and parallel
    /// execution produce identical tree shapes).
    detached: bool,
    children: Vec<SpanNode>,
}

thread_local! {
    static STACK: RefCell<Vec<Pending>> = const { RefCell::new(Vec::new()) };
}

/// Completed root spans awaiting [`take_trace`](crate::take_trace).
static FINISHED: Mutex<Vec<SpanNode>> = Mutex::new(Vec::new());

/// RAII guard for one span. Created by [`span`](crate::span) /
/// [`task_span`](crate::task_span); closing happens on drop. Guards
/// must drop in LIFO order (guaranteed by lexical scoping).
#[must_use = "a span measures the scope it lives in"]
#[derive(Debug)]
pub struct Span {
    active: bool,
}

impl Span {
    /// Whether this guard is actually recording (telemetry was enabled
    /// when it was created).
    pub fn is_recording(&self) -> bool {
        self.active
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_ns = crate::clock_now().unwrap_or(0);
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let pending = stack.pop().expect("span guards drop in LIFO order");
            let node = SpanNode {
                name: pending.name,
                track: pending.track,
                start_ns: pending.start_ns,
                end_ns: end_ns.max(pending.start_ns),
                children: pending.children,
            };
            match stack.last_mut() {
                Some(parent) if !pending.detached => parent.children.push(node),
                _ => FINISHED.lock().expect("span collector lock").push(node),
            }
        });
    }
}

/// Inert guard used when telemetry is off.
pub(crate) fn noop_span() -> Span {
    Span { active: false }
}

/// Opens a span, inheriting the enclosing span's track (if any).
pub(crate) fn open_span(name: &'static str, start_ns: u64) -> Span {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let track = stack.last().map_or(UNTRACKED, |p| p.track);
        stack.push(Pending {
            name,
            track,
            start_ns,
            detached: false,
            children: Vec::new(),
        });
    });
    Span { active: true }
}

/// Opens a detached root span on `track`. Children opened underneath
/// nest normally; on close the whole subtree flushes to the collector
/// regardless of any enclosing span on this thread.
pub(crate) fn open_task_span(name: &'static str, track: u64, start_ns: u64) -> Span {
    STACK.with(|stack| {
        stack.borrow_mut().push(Pending {
            name,
            track,
            start_ns,
            detached: true,
            children: Vec::new(),
        });
    });
    Span { active: true }
}

/// Drains the collector into a canonically ordered [`Trace`]. Roots are
/// sorted by `(track, name, structure)` so completion order (and hence
/// worker scheduling) cannot influence the result.
pub(crate) fn drain_trace() -> Trace {
    let mut roots = std::mem::take(&mut *FINISHED.lock().expect("span collector lock"));
    roots.sort_by_cached_key(|r| {
        let mut shape = String::new();
        r.structure_into(0, &mut shape);
        (r.track, r.name, shape)
    });
    Trace { roots }
}

/// Drops any collected-but-untaken spans (part of a global reset).
pub(crate) fn clear_finished() {
    FINISHED.lock().expect("span collector lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_arithmetic() {
        let node = SpanNode {
            name: "parent",
            track: 3,
            start_ns: 10,
            end_ns: 110,
            children: vec![SpanNode {
                name: "child",
                track: 3,
                start_ns: 20,
                end_ns: 50,
                children: Vec::new(),
            }],
        };
        assert_eq!(node.duration_ns(), 100);
        assert_eq!(node.self_ns(), 70);
        assert_eq!(node.span_count(), 2);
        assert_eq!(node.depth(), 2);
    }

    #[test]
    fn structure_renders_nesting() {
        let trace = Trace {
            roots: vec![SpanNode {
                name: "a",
                track: 0,
                start_ns: 0,
                end_ns: 2,
                children: vec![SpanNode {
                    name: "b",
                    track: 0,
                    start_ns: 0,
                    end_ns: 1,
                    children: Vec::new(),
                }],
            }],
        };
        assert_eq!(trace.structure(), "[track 0] a\n  b\n");
        assert_eq!(trace.span_count(), 2);
    }
}
