//! Sensor deployments.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A position in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// East coordinate.
    pub x: f64,
    /// North coordinate.
    pub y: f64,
}

impl Position {
    /// Euclidean distance.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A deployed sensor field: node positions plus a sink.
///
/// ```
/// use mns_wsn::field::Field;
/// let f = Field::random(50, 100.0, 1);
/// assert_eq!(f.nodes(), 50);
/// assert!(f.position(0).x <= 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    positions: Vec<Position>,
    sink: Position,
    side: f64,
}

impl Field {
    /// Uniform random deployment of `nodes` sensors on a `side × side`
    /// square, sink at the centre.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or `side` non-positive.
    pub fn random(nodes: usize, side: f64, seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(side > 0.0, "field side must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let positions = (0..nodes)
            .map(|_| Position {
                x: rng.gen_range(0.0..side),
                y: rng.gen_range(0.0..side),
            })
            .collect();
        Field {
            positions,
            sink: Position {
                x: side / 2.0,
                y: side / 2.0,
            },
            side,
        }
    }

    /// Number of sensor nodes (sink excluded).
    pub fn nodes(&self) -> usize {
        self.positions.len()
    }

    /// Position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: usize) -> Position {
        self.positions[i]
    }

    /// The sink position.
    pub fn sink(&self) -> Position {
        self.sink
    }

    /// Field side length.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Distance from node `i` to the sink.
    pub fn to_sink(&self, i: usize) -> f64 {
        self.positions[i].distance(self.sink)
    }

    /// Fraction of the field within `radius` of any node in `alive`
    /// (grid-sampled at 20 × 20).
    pub fn coverage(&self, alive: &[bool], radius: f64) -> f64 {
        let n = 20;
        let mut covered = 0;
        for gy in 0..n {
            for gx in 0..n {
                let p = Position {
                    x: (gx as f64 + 0.5) * self.side / n as f64,
                    y: (gy as f64 + 0.5) * self.side / n as f64,
                };
                let hit = self
                    .positions
                    .iter()
                    .zip(alive)
                    .any(|(q, &a)| a && q.distance(p) <= radius);
                if hit {
                    covered += 1;
                }
            }
        }
        covered as f64 / (n * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_is_deterministic_and_in_bounds() {
        let a = Field::random(30, 50.0, 7);
        let b = Field::random(30, 50.0, 7);
        assert_eq!(a, b);
        for i in 0..a.nodes() {
            let p = a.position(i);
            assert!((0.0..=50.0).contains(&p.x) && (0.0..=50.0).contains(&p.y));
        }
        assert_eq!(a.sink(), Position { x: 25.0, y: 25.0 });
    }

    #[test]
    fn coverage_full_and_empty() {
        let f = Field::random(100, 50.0, 3);
        let all = vec![true; 100];
        let none = vec![false; 100];
        assert!(f.coverage(&all, 20.0) > 0.95);
        assert_eq!(f.coverage(&none, 20.0), 0.0);
    }

    #[test]
    fn coverage_decreases_as_nodes_die() {
        let f = Field::random(60, 100.0, 5);
        let all = vec![true; 60];
        let mut half = vec![true; 60];
        for h in half.iter_mut().take(30) {
            *h = false;
        }
        assert!(f.coverage(&half, 12.0) <= f.coverage(&all, 12.0));
    }

    #[test]
    fn distance_helper() {
        let a = Position { x: 0.0, y: 0.0 };
        let b = Position { x: 3.0, y: 4.0 };
        assert_eq!(a.distance(b), 5.0);
    }
}
