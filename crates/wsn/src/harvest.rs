//! Energy harvesting and run-time duty-cycle management (experiment E10).
//!
//! Slide 38: distributed wireless systems must eventually be autonomous —
//! harvest energy from the environment and adapt their behaviour to it.
//! This module provides a synthetic solar trace (diurnal sinusoid with
//! per-day weather) and two evaluators over it:
//!
//! * [`simulate_harvesting`] — the retained **reference** loop over the
//!   historical [`DutyPolicy`] enum (re-exported from
//!   `mns_policy::reference`), byte-for-byte the original inline match;
//!   the energy-neutral policy sets the duty cycle from an EWMA estimate
//!   of harvest power so consumption tracks income (Kansal et al.'s
//!   energy-neutral operation).
//! * [`simulate_policy`] — the same physics driven by a composable
//!   [`mns_policy::PolicyExpr`] engine. Differential proptests
//!   (`tests/policy_properties.rs`) pin its primitive policies
//!   byte-identical to the reference loop.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mns_policy::{Policy, PolicyExpr, SlotCtx};

pub use mns_policy::reference::DutyPolicy;

/// Synthetic solar harvester model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolarModel {
    /// Peak panel output at clear-sky noon (W).
    pub peak_power: f64,
    /// Day length in seconds.
    pub day_length: f64,
    /// Weather severity in `[0, 1]`: 0 = always clear, 1 = fully overcast
    /// days possible.
    pub cloudiness: f64,
}

impl Default for SolarModel {
    fn default() -> Self {
        SolarModel {
            peak_power: 0.05,
            day_length: 86_400.0,
            cloudiness: 0.4,
        }
    }
}

impl SolarModel {
    /// Per-day weather attenuation in `[1 − cloudiness, 1]`,
    /// deterministic per `(seed, day)`.
    pub fn weather(&self, day: u64, seed: u64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ day.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        1.0 - self.cloudiness * rng.gen::<f64>()
    }

    /// Harvested power at absolute time `t` seconds.
    pub fn power(&self, t: f64, seed: u64) -> f64 {
        let day = (t / self.day_length) as u64;
        let phase = (t % self.day_length) / self.day_length;
        // Daylight = first half of the day, sinusoidal.
        let sun = (std::f64::consts::PI * phase * 2.0).sin().max(0.0);
        self.peak_power * sun * self.weather(day, seed)
    }
}

/// Harvesting-node simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestConfig {
    /// Battery capacity (J).
    pub battery_capacity: f64,
    /// Initial battery level as a fraction of capacity.
    pub initial_fraction: f64,
    /// Power draw when active (W).
    pub active_power: f64,
    /// Power draw when sleeping (W).
    pub sleep_power: f64,
    /// Slot length (s).
    pub slot: f64,
    /// Simulated days.
    pub days: u32,
    /// The harvester.
    pub solar: SolarModel,
    /// Weather seed.
    pub seed: u64,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        HarvestConfig {
            battery_capacity: 800.0,
            initial_fraction: 0.5,
            active_power: 0.06,
            sleep_power: 0.001,
            slot: 600.0,
            days: 30,
            solar: SolarModel::default(),
            seed: 1,
        }
    }
}

/// Outcome of a harvesting simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestStats {
    /// Total useful work: Σ duty · slot over live slots (seconds of
    /// active service delivered).
    pub work: f64,
    /// Slots spent dead (battery empty).
    pub dead_slots: u64,
    /// Total slots simulated.
    pub total_slots: u64,
    /// `1 − dead_slots / total_slots`.
    pub uptime: f64,
    /// Energy lost to battery overflow (J) — harvested but not storable.
    pub wasted: f64,
    /// Lowest battery level seen (J).
    pub min_battery: f64,
    /// Total solar income over the run (J), before storage losses. This
    /// is a property of the trace alone: policies cannot change it.
    pub harvested: f64,
    /// Battery level after the last slot (J).
    pub final_battery: f64,
    /// Policy evaluations performed (one per slot).
    pub policy_evals: u64,
    /// Slots in which battery-health derating reduced the duty (always 0
    /// for the reference loop — only the `Derate` combinator derates).
    pub derate_events: u64,
    /// Equivalent full battery cycles over the run: cumulative discharge
    /// divided by nameplate capacity — the input to capacity-fade models.
    pub cycles: f64,
}

/// Simulates one harvesting node under the given policy.
///
/// # Panics
///
/// Panics on non-positive capacity, slot, or day count.
pub fn simulate_harvesting(policy: DutyPolicy, config: &HarvestConfig) -> HarvestStats {
    let _sim_span = mns_telemetry::span("wsn.harvest");
    assert!(config.battery_capacity > 0.0, "capacity must be positive");
    assert!(config.slot > 0.0, "slot must be positive");
    assert!(config.days > 0, "need at least one day");

    let total_slots = ((config.days as f64 * config.solar.day_length / config.slot) as u64).max(1);
    mns_telemetry::counter_add("wsn.harvest_slots", total_slots);
    let mut battery = config.battery_capacity * config.initial_fraction.clamp(0.0, 1.0);
    let mut ewma = 0.0f64;
    let mut work = 0.0;
    let mut dead_slots = 0u64;
    let mut wasted = 0.0;
    let mut harvested = 0.0;
    let mut discharged = 0.0;
    let mut min_battery = battery;

    for s in 0..total_slots {
        let t = s as f64 * config.slot;
        let harvest_power = config.solar.power(t, config.seed);
        let harvest = harvest_power * config.slot;
        harvested += harvest;

        let duty = match policy {
            DutyPolicy::Fixed(d) => d.clamp(0.0, 1.0),
            DutyPolicy::Greedy {
                threshold,
                duty_high,
                duty_low,
            } => {
                if battery >= threshold * config.battery_capacity {
                    duty_high.clamp(0.0, 1.0)
                } else {
                    duty_low.clamp(0.0, 1.0)
                }
            }
            DutyPolicy::EnergyNeutral { alpha } => {
                ewma = alpha * harvest_power + (1.0 - alpha) * ewma;
                let base = (ewma / config.active_power).clamp(0.0, 1.0);
                // Derate near-empty batteries so estimation error cannot
                // brown the node out.
                let fraction = battery / config.battery_capacity;
                if fraction < 0.2 {
                    base * (fraction / 0.2)
                } else {
                    base
                }
            }
        };

        // Income first (harvest accrues during the slot either way).
        battery += harvest;
        if battery > config.battery_capacity {
            wasted += battery - config.battery_capacity;
            battery = config.battery_capacity;
        }

        let demand = (duty * config.active_power + (1.0 - duty) * config.sleep_power) * config.slot;
        let sleep_only = config.sleep_power * config.slot;
        if battery >= demand {
            battery -= demand;
            discharged += demand;
            work += duty * config.slot;
        } else {
            // Not enough to run the chosen duty: the node browns out for
            // the slot, paying at most the sleep draw.
            dead_slots += 1;
            let before = battery;
            battery = (battery - sleep_only).max(0.0);
            discharged += before - battery;
        }
        min_battery = min_battery.min(battery);
    }

    HarvestStats {
        work,
        dead_slots,
        total_slots,
        uptime: 1.0 - dead_slots as f64 / total_slots as f64,
        wasted,
        min_battery,
        harvested,
        final_battery: battery,
        policy_evals: total_slots,
        derate_events: 0,
        cycles: discharged / config.battery_capacity,
    }
}

/// Simulates one harvesting node under a composable policy expression.
///
/// The physics — the solar trace, the income/overflow/demand/brown-out
/// sequence and every float operation in it — replicate
/// [`simulate_harvesting`] exactly; only the duty decision is delegated
/// to the compiled [`mns_policy::Evaluator`]. For the primitive
/// expressions (`Fixed`, `Greedy`, `EnergyNeutral`) the result is
/// byte-identical to the reference loop (pinned by differential
/// proptests), so retiring call sites onto this entry point can never
/// change a golden digest.
///
/// # Panics
///
/// Panics on non-positive capacity, slot, or day count.
pub fn simulate_policy(policy: &PolicyExpr, config: &HarvestConfig) -> HarvestStats {
    let _sim_span = mns_telemetry::span("wsn.harvest");
    assert!(config.battery_capacity > 0.0, "capacity must be positive");
    assert!(config.slot > 0.0, "slot must be positive");
    assert!(config.days > 0, "need at least one day");

    let total_slots = ((config.days as f64 * config.solar.day_length / config.slot) as u64).max(1);
    let slots_per_day = ((config.solar.day_length / config.slot) as u64).max(1);
    mns_telemetry::counter_add("wsn.harvest_slots", total_slots);
    let mut eval = policy.evaluator();
    let mut battery = config.battery_capacity * config.initial_fraction.clamp(0.0, 1.0);
    let mut work = 0.0;
    let mut dead_slots = 0u64;
    let mut wasted = 0.0;
    let mut harvested = 0.0;
    let mut discharged = 0.0;
    let mut min_battery = battery;

    for s in 0..total_slots {
        let t = s as f64 * config.slot;
        let harvest_power = config.solar.power(t, config.seed);
        let harvest = harvest_power * config.slot;
        harvested += harvest;

        // The policy observes the slot *before* income is credited,
        // matching the reference evaluation order.
        let ctx = SlotCtx {
            slot: s,
            slot_of_day: s % slots_per_day,
            slots_per_day,
            day: s / slots_per_day,
            slot_seconds: config.slot,
            battery,
            capacity: config.battery_capacity,
            battery_fraction: battery / config.battery_capacity,
            harvest_power,
            active_power: config.active_power,
            sleep_power: config.sleep_power,
            discharged,
        };
        let duty = eval.duty(&ctx);

        // Income first (harvest accrues during the slot either way).
        battery += harvest;
        if battery > config.battery_capacity {
            wasted += battery - config.battery_capacity;
            battery = config.battery_capacity;
        }

        let demand = (duty * config.active_power + (1.0 - duty) * config.sleep_power) * config.slot;
        let sleep_only = config.sleep_power * config.slot;
        if battery >= demand {
            battery -= demand;
            discharged += demand;
            work += duty * config.slot;
        } else {
            dead_slots += 1;
            let before = battery;
            battery = (battery - sleep_only).max(0.0);
            discharged += before - battery;
        }
        min_battery = min_battery.min(battery);
    }

    let derate_events = eval.derate_events();
    mns_telemetry::counter_add("wsn.policy_evals", total_slots);
    if derate_events > 0 {
        mns_telemetry::counter_add("wsn.derate_events", derate_events);
    }

    HarvestStats {
        work,
        dead_slots,
        total_slots,
        uptime: 1.0 - dead_slots as f64 / total_slots as f64,
        wasted,
        min_battery,
        harvested,
        final_battery: battery,
        policy_evals: total_slots,
        derate_events,
        cycles: discharged / config.battery_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solar_is_zero_at_night_and_peaks_midday() {
        let s = SolarModel {
            cloudiness: 0.0,
            ..SolarModel::default()
        };
        assert_eq!(s.power(0.75 * 86_400.0, 1), 0.0);
        let noonish = s.power(0.25 * 86_400.0, 1);
        assert!((noonish - s.peak_power).abs() < 1e-9);
    }

    #[test]
    fn weather_is_deterministic_and_bounded() {
        let s = SolarModel::default();
        for day in 0..20 {
            let w = s.weather(day, 9);
            assert_eq!(w, s.weather(day, 9));
            assert!((1.0 - s.cloudiness..=1.0).contains(&w));
        }
    }

    #[test]
    fn energy_neutral_has_fewer_dead_slots_than_aggressive_fixed() {
        let cfg = HarvestConfig::default();
        let fixed = simulate_harvesting(DutyPolicy::Fixed(0.9), &cfg);
        let neutral = simulate_harvesting(DutyPolicy::EnergyNeutral { alpha: 0.01 }, &cfg);
        assert!(
            neutral.dead_slots < fixed.dead_slots,
            "neutral {} fixed {}",
            neutral.dead_slots,
            fixed.dead_slots
        );
        assert!(neutral.uptime > fixed.uptime);
    }

    #[test]
    fn energy_neutral_does_more_work_than_timid_fixed() {
        let cfg = HarvestConfig::default();
        // A very low fixed duty survives but wastes the solar income.
        let timid = simulate_harvesting(DutyPolicy::Fixed(0.05), &cfg);
        let neutral = simulate_harvesting(DutyPolicy::EnergyNeutral { alpha: 0.01 }, &cfg);
        assert_eq!(timid.dead_slots, 0);
        assert!(neutral.work > timid.work * 2.0);
    }

    #[test]
    fn greedy_sits_between_extremes() {
        let cfg = HarvestConfig::default();
        let greedy = simulate_harvesting(
            DutyPolicy::Greedy {
                threshold: 0.3,
                duty_high: 0.9,
                duty_low: 0.05,
            },
            &cfg,
        );
        let fixed_hi = simulate_harvesting(DutyPolicy::Fixed(0.9), &cfg);
        assert!(greedy.uptime >= fixed_hi.uptime);
    }

    #[test]
    fn wasted_energy_reported_for_oversized_harvest() {
        let cfg = HarvestConfig {
            battery_capacity: 20.0,
            ..HarvestConfig::default()
        };
        let stats = simulate_harvesting(DutyPolicy::Fixed(0.01), &cfg);
        assert!(stats.wasted > 0.0, "tiny battery must overflow at noon");
    }

    #[test]
    fn policy_engine_primitives_match_reference_loop() {
        let cfg = HarvestConfig::default();
        for reference in [
            DutyPolicy::Fixed(0.4),
            DutyPolicy::Greedy {
                threshold: 0.3,
                duty_high: 0.9,
                duty_low: 0.05,
            },
            DutyPolicy::EnergyNeutral { alpha: 0.01 },
        ] {
            let want = simulate_harvesting(reference, &cfg);
            let got = simulate_policy(&PolicyExpr::from(reference), &cfg);
            assert_eq!(want, got, "{}", reference.label());
        }
    }

    #[test]
    fn derate_combinator_reduces_work_and_counts_events() {
        let cfg = HarvestConfig::default();
        let plain = simulate_policy(&PolicyExpr::Fixed(0.6), &cfg);
        let derated = simulate_policy(
            &PolicyExpr::derate(PolicyExpr::Fixed(0.6), 0.3, 0.2).unwrap(),
            &cfg,
        );
        assert!(derated.work < plain.work);
        assert!(derated.derate_events > 0);
        assert_eq!(plain.derate_events, 0);
        assert_eq!(plain.policy_evals, plain.total_slots);
    }

    #[test]
    fn cycles_track_cumulative_discharge() {
        let cfg = HarvestConfig {
            days: 5,
            ..HarvestConfig::default()
        };
        let s = simulate_harvesting(DutyPolicy::Fixed(0.5), &cfg);
        assert!(s.cycles > 0.0);
        // Energy conservation bounds the equivalent cycles: a node cannot
        // discharge more than its initial charge plus everything stored.
        let max_in = cfg.battery_capacity * cfg.initial_fraction + s.harvested;
        assert!(s.cycles <= max_in / cfg.battery_capacity + 1e-9);
    }

    #[test]
    fn stats_invariants() {
        let cfg = HarvestConfig {
            days: 5,
            ..HarvestConfig::default()
        };
        let s = simulate_harvesting(DutyPolicy::Fixed(0.5), &cfg);
        assert_eq!(s.total_slots, (5.0 * 86_400.0 / 600.0) as u64);
        assert!(s.work <= s.total_slots as f64 * cfg.slot);
        assert!((0.0..=1.0).contains(&s.uptime));
        assert!(s.min_battery >= 0.0);
    }
}
