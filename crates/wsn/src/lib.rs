//! # mns-wsn — environmental wireless sensor networks
//!
//! The keynote's third example (slides 35–40): wireless sensor networks
//! that monitor the environment must process data locally versus globally,
//! tolerate node failures through redundancy, and eventually power
//! themselves by harvesting — with "policies for run-time
//! energy/information management" playing the key role. This crate builds
//! those pieces:
//!
//! * [`radio`] — the first-order radio energy model
//!   (`E_tx = e_elec·k + e_amp·k·d²`),
//! * [`field`] — random sensor deployments with a sink,
//! * [`protocol`] — data-collection protocols: direct transmission,
//!   min-hop tree forwarding, and LEACH-style rotating cluster heads, each
//!   with optional in-network aggregation ("the power of data
//!   abstraction", slide 37),
//! * [`sim`] — round-based lifetime simulation with failure injection and
//!   coverage/delivery metrics (experiment E9),
//! * [`harvest`] — solar harvesting traces and duty-cycle management
//!   (experiment E10): the retained reference loop over the historical
//!   fixed/greedy/energy-neutral [`harvest::DutyPolicy`] enum, and
//!   [`harvest::simulate_policy`] driving the same physics from a
//!   composable `mns_policy::PolicyExpr` (forecast EWMA, battery-health
//!   derating, hysteresis, schedules, clamps). Multi-node lifetime runs
//!   accept per-node heterogeneous policies via
//!   `LifetimeConfig::policies`.
//!
//! ## Example
//!
//! ```
//! use mns_wsn::field::Field;
//! use mns_wsn::protocol::Protocol;
//! use mns_wsn::sim::{simulate_lifetime, LifetimeConfig};
//!
//! let field = Field::random(60, 120.0, 42);
//! let cfg = LifetimeConfig::default();
//! let direct = simulate_lifetime(&field, Protocol::Direct, &cfg);
//! let cluster = simulate_lifetime(&field, Protocol::cluster(0.15, true), &cfg);
//! // Rotating aggregation heads balance the load: the first node dies
//! // later than under naive direct transmission.
//! assert!(cluster.first_death_round > direct.first_death_round);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod harvest;
pub mod protocol;
pub mod radio;
pub mod sim;

pub use field::Field;
pub use protocol::Protocol;
pub use radio::RadioModel;
