//! Data-collection protocols.

/// How sensed data reaches the sink each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Protocol {
    /// Every node transmits straight to the sink — the naive baseline
    /// ("classical supercomputer approach" of shipping all raw data).
    Direct,
    /// Min-hop tree forwarding over links no longer than `radio_range`;
    /// with `aggregate`, each relay fuses its subtree into one packet.
    Tree {
        /// Maximum link length in metres.
        radio_range: f64,
        /// In-network aggregation on/off.
        aggregate: bool,
    },
    /// LEACH-style clustering: nodes elect themselves cluster head with
    /// probability `p` (rotating), members send to the nearest head, heads
    /// forward (optionally aggregated) to the sink.
    Cluster {
        /// Cluster-head probability per round.
        p: f64,
        /// In-network aggregation at cluster heads on/off.
        aggregate: bool,
    },
}

impl Protocol {
    /// Tree protocol with the given radio range.
    pub fn tree(radio_range: f64, aggregate: bool) -> Protocol {
        Protocol::Tree {
            radio_range,
            aggregate,
        }
    }

    /// Clustering protocol with head probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p ≤ 1`.
    pub fn cluster(p: f64, aggregate: bool) -> Protocol {
        assert!(p > 0.0 && p <= 1.0, "head probability must be in (0, 1]");
        Protocol::Cluster { p, aggregate }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Protocol::Direct => "direct".to_owned(),
            Protocol::Tree { aggregate, .. } => {
                format!("tree{}", if *aggregate { "+agg" } else { "" })
            }
            Protocol::Cluster { aggregate, .. } => {
                format!("cluster{}", if *aggregate { "+agg" } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Protocol::Direct.label(), "direct");
        assert_eq!(Protocol::tree(20.0, true).label(), "tree+agg");
        assert_eq!(Protocol::cluster(0.05, false).label(), "cluster");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = Protocol::cluster(0.0, true);
    }
}
