//! The first-order radio energy model (Heinzelman et al.).

/// Radio energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Electronics energy per bit (J/bit) for both TX and RX chains.
    pub e_elec: f64,
    /// Amplifier energy per bit per m² (J/bit/m²), free-space model.
    pub e_amp: f64,
    /// Packet size in bits.
    pub packet_bits: f64,
    /// Energy to aggregate one packet's worth of data (J/packet).
    pub e_aggregate: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel {
            e_elec: 50e-9,
            e_amp: 100e-12,
            packet_bits: 2_000.0,
            e_aggregate: 5e-9 * 2_000.0,
        }
    }
}

impl RadioModel {
    /// Energy to transmit one packet over distance `d` metres.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative.
    pub fn tx(&self, d: f64) -> f64 {
        assert!(d >= 0.0, "distance must be non-negative");
        self.e_elec * self.packet_bits + self.e_amp * self.packet_bits * d * d
    }

    /// Energy to receive one packet.
    pub fn rx(&self) -> f64 {
        self.e_elec * self.packet_bits
    }

    /// Energy to fuse one incoming packet into an aggregate.
    pub fn aggregate(&self) -> f64 {
        self.e_aggregate
    }

    /// Distance at which transmitting directly costs the same as two hops
    /// of half the distance — the break-even that motivates multi-hop.
    pub fn multihop_breakeven(&self) -> f64 {
        // tx(d) = 2·tx(d/2) + rx  ⇒  e_amp·k·d²/2 = e_elec·k + rx
        (2.0 * (self.e_elec * self.packet_bits + self.rx()) / (self.e_amp * self.packet_bits))
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_grows_quadratically() {
        let r = RadioModel::default();
        let near = r.tx(10.0);
        let far = r.tx(100.0);
        assert!(far > near);
        let amp_near = near - r.rx();
        let amp_far = far - r.rx();
        assert!((amp_far / amp_near - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rx_independent_of_distance() {
        let r = RadioModel::default();
        assert_eq!(r.rx(), r.e_elec * r.packet_bits);
    }

    #[test]
    fn breakeven_separates_regimes() {
        let r = RadioModel::default();
        let d = r.multihop_breakeven();
        // Below break-even direct is cheaper; above, two half-hops win.
        let direct = |x: f64| r.tx(x);
        let two_hop = |x: f64| 2.0 * r.tx(x / 2.0) + r.rx();
        assert!(direct(d * 0.5) < two_hop(d * 0.5));
        assert!(direct(d * 2.0) > two_hop(d * 2.0));
    }
}
