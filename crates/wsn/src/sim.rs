//! Round-based network-lifetime simulation (experiment E9).
//!
//! Each round, every live node senses one packet and the configured
//! [`Protocol`] carries the data to the sink; radio energies are deducted
//! per the first-order model and nodes die when their battery empties.
//! Exogenous failures (slide 36: "providing redundancy to tolerate local
//! failures") can be injected on top.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mns_policy::{Evaluator, Policy, PolicyAssignment, SlotCtx};

use crate::field::Field;
use crate::harvest::SolarModel;
use crate::protocol::Protocol;
use crate::radio::RadioModel;

/// Lifetime-simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeConfig {
    /// Initial battery per node (J).
    pub initial_energy: f64,
    /// Radio energy model.
    pub radio: RadioModel,
    /// Hard round cap.
    pub max_rounds: u64,
    /// Per-node, per-round probability of exogenous failure.
    pub failure_rate: f64,
    /// Sensing radius for the coverage metric (m).
    pub sensing_radius: f64,
    /// RNG seed (failures, cluster-head election).
    pub seed: u64,
    /// Optional per-node energy harvesting: `(solar model, panel scale,
    /// seconds per round)`. Each round every live node gains
    /// `solar.power(t) · panel_scale · round_seconds` joules
    /// ("eliminate energy dependence", keynote slide 5).
    pub harvesting: Option<(SolarModel, f64, f64)>,
    /// Optional per-node run-time energy-management policies. When set,
    /// each live node evaluates its policy every round and the resulting
    /// duty cycle gates how often it *sources* a sample (via a
    /// deterministic duty accumulator); idle nodes still relay for their
    /// neighbours. `None` reproduces the historical always-active
    /// behaviour bit for bit.
    pub policies: Option<PolicyAssignment>,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        LifetimeConfig {
            initial_energy: 0.2,
            radio: RadioModel::default(),
            max_rounds: 20_000,
            failure_rate: 0.0,
            sensing_radius: 15.0,
            seed: 1,
            harvesting: None,
            policies: None,
        }
    }
}

/// Outcome of a lifetime simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeStats {
    /// Round at which the first node died (energy or failure).
    pub first_death_round: u64,
    /// Round at which half the nodes were dead.
    pub half_death_round: u64,
    /// Rounds simulated (all dead or cap reached).
    pub rounds: u64,
    /// Packets sensed by live nodes over the run.
    pub sensed: u64,
    /// Packets (or aggregates representing them) that reached the sink.
    pub delivered: u64,
    /// `delivered / sensed`.
    pub delivered_ratio: f64,
    /// Time-averaged field coverage.
    pub avg_coverage: f64,
    /// Total radio energy spent (J).
    pub energy_spent: f64,
}

/// Runs the round-based lifetime simulation.
pub fn simulate_lifetime(
    field: &Field,
    protocol: Protocol,
    config: &LifetimeConfig,
) -> LifetimeStats {
    let _sim_span = mns_telemetry::span("wsn.lifetime");
    let n = field.nodes();
    let mut battery = vec![config.initial_energy; n];
    let mut failed = vec![false; n];
    let mut last_head: Vec<i64> = vec![i64::MIN / 2; n];
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Per-node policy engine state (only when heterogeneous policies are
    // configured — `None` keeps the historical always-active code path).
    let mut evaluators: Option<Vec<Evaluator>> = config.policies.as_ref().map(|assignment| {
        (0..n)
            .map(|i| assignment.policy_for(i).evaluator())
            .collect()
    });
    // Deterministic duty gating: a node sources a sample whenever its
    // accumulated duty crosses 1.0. Seeded at 1.0 so every node is active
    // in round 0 regardless of policy.
    let mut duty_acc = vec![1.0f64; n];
    let mut discharged = vec![0.0f64; n];
    let mut policy_evals = 0u64;
    let round_seconds = config
        .harvesting
        .map(|(_, _, rs)| rs)
        .unwrap_or(60.0)
        .max(1e-9);
    let rounds_per_day = ((config
        .harvesting
        .map(|(solar, _, _)| solar.day_length)
        .unwrap_or(86_400.0)
        / round_seconds) as u64)
        .max(1);

    // Cached BFS routing tree for the Tree protocol, rebuilt only when
    // the live set changes (tree construction is O(live²) distance
    // checks — the hot spot of long runs).
    type TreeCache = (Vec<usize>, Vec<Option<usize>>, Vec<u64>, Vec<usize>);
    let mut tree_cache: Option<TreeCache> = None;

    let mut first_death = None;
    let mut half_death = None;
    let mut sensed = 0u64;
    let mut delivered = 0u64;
    let mut coverage_acc = 0.0;
    let mut coverage_samples = 0u64;
    let mut energy_spent = 0.0;
    let mut round = 0u64;

    let alive = |battery: &[f64], failed: &[bool], i: usize| battery[i] > 0.0 && !failed[i];

    while round < config.max_rounds {
        // Exogenous failures.
        if config.failure_rate > 0.0 {
            for (i, f) in failed.iter_mut().enumerate() {
                if !*f && battery[i] > 0.0 && rng.gen_bool(config.failure_rate) {
                    *f = true;
                }
            }
        }
        let live: Vec<usize> = (0..n).filter(|&i| alive(&battery, &failed, i)).collect();
        if live.is_empty() {
            break;
        }
        // Coverage is sampled every 8 rounds — it changes slowly and the
        // grid scan is the hot spot of long runs.
        if round.is_multiple_of(8) {
            let alive_mask: Vec<bool> = (0..n).map(|i| alive(&battery, &failed, i)).collect();
            coverage_acc += field.coverage(&alive_mask, config.sensing_radius);
            coverage_samples += 1;
        }

        // Per-node duty decisions: each live node observes its own state
        // (pre-income, like the harvest reference loop) and its duty
        // accumulator decides whether it sources a sample this round.
        // Idle nodes still relay for their neighbours.
        let mut active = vec![true; n];
        if let Some(evals) = evaluators.as_mut() {
            let t = round as f64 * round_seconds;
            let capacity = config.initial_energy;
            for &i in &live {
                let harvest_power = match config.harvesting {
                    Some((solar, panel_scale, _)) => solar.power(t, config.seed) * panel_scale,
                    None => 0.0,
                };
                // Reference power scale for EWMA-family policies: the
                // cost rate of this node reporting directly every round.
                let active_power = config.radio.tx(field.to_sink(i)) / round_seconds;
                let ctx = SlotCtx {
                    slot: round,
                    slot_of_day: round % rounds_per_day,
                    slots_per_day: rounds_per_day,
                    day: round / rounds_per_day,
                    slot_seconds: round_seconds,
                    battery: battery[i],
                    capacity,
                    battery_fraction: if capacity > 0.0 {
                        battery[i] / capacity
                    } else {
                        0.0
                    },
                    harvest_power,
                    active_power,
                    sleep_power: 0.0,
                    discharged: discharged[i],
                };
                let duty = evals[i].duty(&ctx);
                policy_evals += 1;
                duty_acc[i] += duty;
                if duty_acc[i] >= 1.0 {
                    duty_acc[i] -= 1.0;
                } else {
                    active[i] = false;
                }
            }
        }
        sensed += live.iter().filter(|&&i| active[i]).count() as u64;

        // Energy bookkeeping for this round.
        let mut spend = vec![0.0f64; n];
        let mut reached = 0u64;
        match protocol {
            Protocol::Direct => {
                for &i in &live {
                    if active[i] {
                        spend[i] += config.radio.tx(field.to_sink(i));
                        reached += 1;
                    }
                }
            }
            Protocol::Tree {
                radio_range,
                aggregate,
            } => {
                // BFS tree rooted at the sink over ≤ radio_range links,
                // reused across rounds until a node dies or fails.
                let rebuild = match &tree_cache {
                    Some((cached_live, _, _, _)) => cached_live != &live,
                    None => true,
                };
                if rebuild {
                    mns_telemetry::counter_add("wsn.tree_rebuilds", 1);
                    let mut parent: Vec<Option<usize>> = vec![None; n]; // None = unattached
                    let mut depth: Vec<u64> = vec![u64::MAX; n];
                    let mut frontier: Vec<usize> = Vec::new();
                    for &i in &live {
                        if field.to_sink(i) <= radio_range {
                            depth[i] = 1;
                            frontier.push(i);
                        }
                    }
                    let mut order = frontier.clone();
                    let mut visited: Vec<bool> = depth.iter().map(|&d| d != u64::MAX).collect();
                    while !frontier.is_empty() {
                        let mut next = Vec::new();
                        for &p in &frontier {
                            for &c in &live {
                                if !visited[c]
                                    && field.position(c).distance(field.position(p)) <= radio_range
                                {
                                    visited[c] = true;
                                    depth[c] = depth[p] + 1;
                                    parent[c] = Some(p);
                                    next.push(c);
                                }
                            }
                        }
                        order.extend(&next);
                        frontier = next;
                    }
                    tree_cache = Some((live.clone(), parent, depth, order));
                }
                let (_, parent, depth, order) =
                    tree_cache.as_ref().expect("tree cache just (re)built");
                // Leaf-to-root accumulation: process deepest first.
                let mut carrying: Vec<u64> = vec![0; n];
                for &i in &live {
                    if depth[i] != u64::MAX && active[i] {
                        carrying[i] += 1; // own sample
                    }
                    // Unattached nodes sense but cannot deliver; idle
                    // nodes relay without sourcing a sample.
                }
                let mut by_depth = order.clone();
                by_depth.sort_by_key(|&i| std::cmp::Reverse(depth[i]));
                for &i in &by_depth {
                    let packets = if aggregate { 1 } else { carrying[i] };
                    if packets == 0 {
                        continue;
                    }
                    match parent[i] {
                        Some(p) => {
                            let d = field.position(i).distance(field.position(p));
                            spend[i] += config.radio.tx(d) * packets as f64;
                            spend[p] += config.radio.rx() * packets as f64;
                            if aggregate {
                                spend[p] += config.radio.aggregate() * packets as f64;
                            }
                            if !aggregate {
                                carrying[p] += carrying[i];
                            }
                        }
                        None => {
                            // Directly attached to the sink. (With
                            // aggregation, `reached` is recomputed below
                            // as the attached-node count.)
                            spend[i] += config.radio.tx(field.to_sink(i)) * packets as f64;
                            reached += carrying[i];
                        }
                    }
                }
                if aggregate {
                    // With aggregation each attached *active* node's
                    // sample is represented in some root aggregate
                    // (every attached node when no policies gate duty).
                    reached = order.iter().filter(|&&i| active[i]).count() as u64;
                }
            }
            Protocol::Cluster { p, aggregate } => {
                let period = (1.0 / p).ceil() as i64;
                let mut heads: Vec<usize> = Vec::new();
                for &i in &live {
                    let eligible = round as i64 - last_head[i] >= period;
                    if eligible && rng.gen_bool(p) {
                        heads.push(i);
                        last_head[i] = round as i64;
                    }
                }
                if heads.is_empty() {
                    // Fall back: nearest node to the sink becomes head.
                    let i = *live
                        .iter()
                        .min_by(|&&a, &&b| {
                            field
                                .to_sink(a)
                                .partial_cmp(&field.to_sink(b))
                                .expect("finite distances")
                        })
                        .expect("live nodes exist");
                    heads.push(i);
                    last_head[i] = round as i64;
                }
                // Members join the nearest head. Idle members have no
                // sample to report this round, so they stay silent.
                let mut members: Vec<u64> = vec![0; n];
                for &i in &live {
                    if heads.contains(&i) || !active[i] {
                        continue;
                    }
                    let h = *heads
                        .iter()
                        .min_by(|&&a, &&b| {
                            field
                                .position(i)
                                .distance(field.position(a))
                                .partial_cmp(&field.position(i).distance(field.position(b)))
                                .expect("finite distances")
                        })
                        .expect("at least one head");
                    let d = field.position(i).distance(field.position(h));
                    spend[i] += config.radio.tx(d);
                    spend[h] += config.radio.rx();
                    members[h] += 1;
                }
                for &h in &heads {
                    let cluster_packets = members[h] + u64::from(active[h]);
                    if cluster_packets == 0 {
                        continue;
                    }
                    if aggregate {
                        spend[h] += config.radio.aggregate() * members[h] as f64;
                        spend[h] += config.radio.tx(field.to_sink(h));
                        reached += cluster_packets;
                    } else {
                        spend[h] += config.radio.tx(field.to_sink(h)) * cluster_packets as f64;
                        reached += cluster_packets;
                    }
                }
            }
        }

        delivered += reached;
        // Harvest income before paying the radio bill.
        if let Some((solar, panel_scale, round_seconds)) = config.harvesting {
            let t = round as f64 * round_seconds;
            let income = solar.power(t, config.seed) * panel_scale * round_seconds;
            for (i, b) in battery.iter_mut().enumerate() {
                if *b > 0.0 && !failed[i] {
                    *b = (*b + income).min(config.initial_energy);
                }
            }
        }
        for i in 0..n {
            if spend[i] > 0.0 {
                // A node can only draw the charge it actually holds: in its
                // death round the radio bill is truncated by the battery
                // running dry, so total spend never exceeds total capacity.
                let drawn = spend[i].min(battery[i].max(0.0));
                energy_spent += drawn;
                discharged[i] += drawn;
                battery[i] -= spend[i];
            }
        }

        round += 1;
        let dead = (0..n).filter(|&i| !alive(&battery, &failed, i)).count();
        if dead > 0 && first_death.is_none() {
            first_death = Some(round);
        }
        if dead * 2 >= n && half_death.is_none() {
            half_death = Some(round);
        }
        if dead == n {
            break;
        }
    }
    mns_telemetry::counter_add("wsn.rounds", round);
    if policy_evals > 0 {
        mns_telemetry::counter_add("wsn.policy_evals", policy_evals);
        let derated: u64 = evaluators
            .iter()
            .flatten()
            .map(Evaluator::derate_events)
            .sum();
        if derated > 0 {
            mns_telemetry::counter_add("wsn.derate_events", derated);
        }
    }

    LifetimeStats {
        first_death_round: first_death.unwrap_or(round),
        half_death_round: half_death.unwrap_or(round),
        rounds: round,
        sensed,
        delivered,
        delivered_ratio: if sensed == 0 {
            0.0
        } else {
            delivered as f64 / sensed as f64
        },
        avg_coverage: if coverage_samples == 0 {
            0.0
        } else {
            coverage_acc / coverage_samples as f64
        },
        energy_spent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_field() -> Field {
        Field::random(40, 120.0, 3)
    }

    #[test]
    fn direct_eventually_kills_far_nodes_first() {
        let f = small_field();
        let cfg = LifetimeConfig {
            max_rounds: 50_000,
            ..LifetimeConfig::default()
        };
        let stats = simulate_lifetime(&f, Protocol::Direct, &cfg);
        assert!(stats.first_death_round > 0);
        assert!(stats.first_death_round < cfg.max_rounds);
        assert!(stats.delivered_ratio > 0.99);
    }

    #[test]
    fn aggregation_extends_lifetime() {
        let f = small_field();
        let cfg = LifetimeConfig::default();
        let raw = simulate_lifetime(&f, Protocol::cluster(0.05, false), &cfg);
        let agg = simulate_lifetime(&f, Protocol::cluster(0.05, true), &cfg);
        assert!(
            agg.half_death_round > raw.half_death_round,
            "agg {} raw {}",
            agg.half_death_round,
            raw.half_death_round
        );
    }

    #[test]
    fn clustering_delays_first_death_versus_direct() {
        let f = small_field();
        let cfg = LifetimeConfig::default();
        let direct = simulate_lifetime(&f, Protocol::Direct, &cfg);
        let cluster = simulate_lifetime(&f, Protocol::cluster(0.15, true), &cfg);
        assert!(
            cluster.first_death_round > direct.first_death_round,
            "cluster {} direct {}",
            cluster.first_death_round,
            direct.first_death_round
        );
    }

    #[test]
    fn tree_delivers_attached_nodes() {
        let f = small_field();
        let cfg = LifetimeConfig {
            max_rounds: 50,
            ..LifetimeConfig::default()
        };
        let stats = simulate_lifetime(&f, Protocol::tree(45.0, true), &cfg);
        assert!(
            stats.delivered_ratio > 0.5,
            "ratio {}",
            stats.delivered_ratio
        );
    }

    #[test]
    fn failures_shorten_first_death_and_reduce_coverage() {
        let f = small_field();
        let base = LifetimeConfig {
            max_rounds: 2_000,
            ..LifetimeConfig::default()
        };
        let with_failures = LifetimeConfig {
            failure_rate: 0.002,
            ..base.clone()
        };
        let healthy = simulate_lifetime(&f, Protocol::cluster(0.05, true), &base);
        let failing = simulate_lifetime(&f, Protocol::cluster(0.05, true), &with_failures);
        assert!(failing.first_death_round <= healthy.first_death_round);
        assert!(failing.avg_coverage <= healthy.avg_coverage + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let f = small_field();
        let cfg = LifetimeConfig {
            max_rounds: 500,
            ..LifetimeConfig::default()
        };
        let a = simulate_lifetime(&f, Protocol::cluster(0.1, true), &cfg);
        let b = simulate_lifetime(&f, Protocol::cluster(0.1, true), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn harvesting_extends_or_sustains_the_network() {
        let f = small_field();
        let base = LifetimeConfig {
            max_rounds: 3_000,
            ..LifetimeConfig::default()
        };
        let dead_end = simulate_lifetime(&f, Protocol::cluster(0.15, true), &base);
        let harvesting = LifetimeConfig {
            harvesting: Some((SolarModel::default(), 0.02, 60.0)),
            ..base
        };
        let sustained = simulate_lifetime(&f, Protocol::cluster(0.15, true), &harvesting);
        assert!(
            sustained.first_death_round > dead_end.first_death_round,
            "harvesting {} vs battery-only {}",
            sustained.first_death_round,
            dead_end.first_death_round
        );
    }

    #[test]
    fn strong_harvesting_makes_the_network_immortal() {
        let f = small_field();
        let cfg = LifetimeConfig {
            max_rounds: 2_000,
            harvesting: Some((
                SolarModel {
                    cloudiness: 0.0,
                    ..SolarModel::default()
                },
                1.0,
                600.0,
            )),
            ..LifetimeConfig::default()
        };
        let stats = simulate_lifetime(&f, Protocol::cluster(0.15, true), &cfg);
        assert_eq!(
            stats.first_death_round, cfg.max_rounds,
            "no node should die with abundant harvest"
        );
    }

    #[test]
    fn always_on_policy_is_bit_identical_to_no_policy() {
        use mns_policy::{PolicyAssignment, PolicyExpr};
        let f = small_field();
        let base = LifetimeConfig {
            max_rounds: 800,
            ..LifetimeConfig::default()
        };
        let gated = LifetimeConfig {
            policies: Some(PolicyAssignment::Uniform(PolicyExpr::Fixed(1.0))),
            ..base.clone()
        };
        for protocol in [
            Protocol::Direct,
            Protocol::tree(45.0, true),
            Protocol::cluster(0.1, true),
        ] {
            let a = simulate_lifetime(&f, protocol, &base);
            let b = simulate_lifetime(&f, protocol, &gated);
            assert_eq!(a, b, "duty 1.0 must reproduce the ungated run");
        }
    }

    #[test]
    fn half_duty_halves_sensing_and_stretches_lifetime() {
        use mns_policy::{PolicyAssignment, PolicyExpr};
        let f = small_field();
        let base = LifetimeConfig {
            max_rounds: 5_000,
            ..LifetimeConfig::default()
        };
        let throttled = LifetimeConfig {
            policies: Some(PolicyAssignment::Uniform(PolicyExpr::Fixed(0.5))),
            ..base.clone()
        };
        let full = simulate_lifetime(&f, Protocol::Direct, &base);
        let half = simulate_lifetime(&f, Protocol::Direct, &throttled);
        // Half the duty → roughly half the per-round sensing, but the
        // energy saved keeps nodes alive longer.
        assert!(half.first_death_round > full.first_death_round);
        let full_rate = full.sensed as f64 / full.rounds as f64;
        let half_rate = half.sensed as f64 / half.rounds as f64;
        assert!(
            half_rate < 0.6 * full_rate,
            "half-duty rate {half_rate} vs full rate {full_rate}"
        );
    }

    #[test]
    fn heterogeneous_assignment_is_deterministic() {
        use mns_policy::{PolicyAssignment, PolicyExpr};
        let f = small_field();
        let cfg = LifetimeConfig {
            max_rounds: 600,
            policies: Some(PolicyAssignment::RoundRobin(vec![
                PolicyExpr::Fixed(1.0),
                PolicyExpr::greedy(0.5, 1.0, 0.25).unwrap(),
                PolicyExpr::hysteresis(0.2, 0.6, PolicyExpr::Fixed(1.0), PolicyExpr::Fixed(0.2))
                    .unwrap(),
            ])),
            ..LifetimeConfig::default()
        };
        let a = simulate_lifetime(&f, Protocol::cluster(0.1, true), &cfg);
        let b = simulate_lifetime(&f, Protocol::cluster(0.1, true), &cfg);
        assert_eq!(a, b);
        assert!(a.sensed > 0 && a.delivered > 0);
    }

    #[test]
    fn coverage_declines_over_lifetime() {
        let f = small_field();
        let cfg = LifetimeConfig::default();
        let stats = simulate_lifetime(&f, Protocol::Direct, &cfg);
        // Average coverage across the run is below the initial coverage.
        let initial = f.coverage(&vec![true; f.nodes()], cfg.sensing_radius);
        assert!(stats.avg_coverage <= initial + 1e-9);
    }
}
