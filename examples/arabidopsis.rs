//! The slide-33 story: *Arabidopsis thaliana* flower-organ fates and the
//! AP3 knock-out (petals → sepals, stamens → carpels).
//!
//! ```sh
//! cargo run --example arabidopsis
//! ```

use micronano::core::report::Table;
use micronano::grn::models::{arabidopsis, organ_repertoire, FloralInputs};
use micronano::grn::Perturbation;

fn repertoire_of(
    inputs: FloralInputs,
    knockout: Option<&str>,
) -> Result<String, Box<dyn std::error::Error>> {
    let mut net = arabidopsis(inputs);
    if let Some(gene) = knockout {
        net = net.with_perturbation(&Perturbation::knock_out(gene))?;
    }
    let organs = organ_repertoire(&net)?;
    Ok(organs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", "))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Arabidopsis flower-organ network (ABC logic, 15 genes)\n");

    let whorl_names = ["whorl 1", "whorl 2", "whorl 3", "whorl 4"];
    let whorls = FloralInputs::whorls();

    let mut t = Table::new(
        "flower",
        "fixed-point organ repertoire per whorl",
        &[
            "whorl",
            "wild type",
            "ap3 knock-out",
            "ag knock-out",
            "lfy knock-out",
        ],
    );
    for (name, w) in whorl_names.iter().zip(whorls) {
        t.row_owned(vec![
            (*name).to_owned(),
            repertoire_of(w, None)?,
            repertoire_of(w, Some("AP3"))?,
            repertoire_of(w, Some("AG"))?,
            repertoire_of(w, Some("LFY"))?,
        ]);
    }
    println!("{t}");

    println!(
        "vegetative scenario (no FT signal): {}",
        repertoire_of(FloralInputs::vegetative(), None)?
    );
    println!(
        "\nreading: the ap3 mutant loses petal and stamen identities exactly\n\
         as on keynote slide 33 — whorl 2 reverts to sepal, whorl 3 to carpel."
    );
    Ok(())
}
