//! Assay-family sweep (experiment A8): compile every synthetic protocol
//! family onto the standard 16×16 array and compare their schedule cost.
//!
//! Each [`AssayKind`] stresses the compiler differently — the multiplex
//! immunoassay is wide and shallow, serial dilution is a single deep
//! ladder, washing protocols force electrode reuse, mixing trees are
//! wide reductions, and dilution gradients are unequal parallel ladders.
//! The sweep reports DAG shape (ops, width proxy, critical path) next to
//! the compiled makespan/moves/energy, clean and with 4% dead electrodes.
//!
//! ```sh
//! cargo run --release --example assay_families
//! ```

use micronano::core::report::Table;
use micronano::core::runner::{
    AssayKind, FluidicsScenario, RunnerConfig, Scenario, ScenarioOutcome,
};

/// The sweep grid: every family at a small and a larger scale.
fn grid() -> Vec<(AssayKind, usize)> {
    let mut out = Vec::new();
    for kind in AssayKind::catalog() {
        let scales: &[usize] = match kind {
            // fanin^n reagents — keep the tree shallow.
            AssayKind::MixingTree { .. } => &[2, 3],
            _ => &[2, 4],
        };
        for &n in scales {
            out.push((kind, n));
        }
    }
    out
}

fn main() {
    println!("micronano assay families — one compiler, five DAG shapes\n");

    let grid_entries = grid();
    let mut scenarios = Vec::new();
    for &(kind, n) in &grid_entries {
        for &(dead, fault_seed) in &[(0.0, 0u64), (0.04, 42u64)] {
            scenarios.push(Scenario::FluidicsCompile(FluidicsScenario {
                assay: kind,
                plex: n,
                grid_side: 16,
                dead_fraction: dead,
                fault_seed,
            }));
        }
    }
    let outcomes = RunnerConfig::new()
        .workers(0)
        .cache(false)
        .build()
        .run(&scenarios)
        .outcomes;

    let mut table = Table::new(
        "assay-families",
        "per-family schedule cost, 16×16 array (clean / 4% dead electrodes)",
        &[
            "assay", "ops", "cpath", "makespan", "moves", "energy", "mk 4%", "mv 4%", "en 4%",
        ],
    );
    for (i, &(kind, n)) in grid_entries.iter().enumerate() {
        let dag = kind.instantiate(n);
        let clean = &outcomes[2 * i];
        let faulty = &outcomes[2 * i + 1];
        let cell = |o: &ScenarioOutcome| -> [String; 3] {
            let ScenarioOutcome::Fluidics {
                compiled,
                makespan,
                moves,
                energy,
                ..
            } = *o
            else {
                unreachable!("fluidics scenarios yield fluidics outcomes");
            };
            if compiled {
                [makespan.to_string(), moves.to_string(), energy.to_string()]
            } else {
                ["-".into(), "-".into(), "-".into()]
            }
        };
        let c = cell(clean);
        let f = cell(faulty);
        table.row(&[
            &kind.describe(n),
            &dag.len().to_string(),
            &dag.critical_path_len().to_string(),
            &c[0],
            &c[1],
            &c[2],
            &f[0],
            &f[1],
            &f[2],
        ]);
    }
    println!("{table}");

    let clean_fails = outcomes
        .iter()
        .step_by(2)
        .filter(|o| {
            matches!(
                o,
                ScenarioOutcome::Fluidics {
                    compiled: false,
                    ..
                }
            )
        })
        .count();
    println!(
        "verdict: {}/{} families compile cleanly on the pristine array.",
        grid_entries.len() - clean_fails,
        grid_entries.len()
    );
}
