//! Bio-discovery (keynote slide 26): "new biological mechanisms" from
//! array data — the full loop across three domains.
//!
//! 1. The T-helper gene network (`mns-grn`) defines two effector cell
//!    fates, Th1 and Th2, as attractors.
//! 2. A synthetic patient cohort is sampled: each sample is a population
//!    of cells in one fate; its expression profile is the attractor state
//!    plus biological and sensing noise (`mns-biosensor`).
//! 3. Exact ZDD biclustering (`mns-bicluster`) then *rediscovers* the
//!    Th1/Th2 gene modules from the measured matrix alone — linking
//!    "genetic data to clinical traits" without knowing the network.
//!
//! ```sh
//! cargo run --example biodiscovery
//! ```

use micronano::bicluster::discretize::binarize_with_threshold;
use micronano::bicluster::zdd_miner::{enumerate_maximal, MinerConfig};
use micronano::biosensor::array::{SensorArray, SensorConfig};
use micronano::biosensor::kinetics::BindingKinetics;
use micronano::biosensor::Matrix;
use micronano::core::report::Table;
use micronano::grn::models::{t_helper, th_fates, ThFate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Ground truth from the gene network.
    let net = t_helper();
    let fates = th_fates(&net)?;
    let th1 = fates
        .iter()
        .find(|&&(_, f)| f == ThFate::Th1)
        .expect("Th1 attractor")
        .0;
    let th2 = fates
        .iter()
        .find(|&&(_, f)| f == ThFate::Th2)
        .expect("Th2 attractor")
        .0;
    let genes = net.len();

    // 2. A cohort: 12 Th1 samples, 12 Th2 samples, 6 naive (Th0 ≈ all-off).
    let cohort: Vec<(u64, &str)> = (0..12)
        .map(|i| (i, "Th1"))
        .chain((0..12).map(|i| (i + 100, "Th2")))
        .chain((0..6).map(|i| (i + 200, "Th0")))
        .collect();
    let array = SensorArray::uniform(genes, BindingKinetics::dna_probe(), SensorConfig::default());
    let unit = 2e-9; // molar per expression unit
    let mut measured = Matrix::zeros(genes, cohort.len());
    for (col, &(seed, fate)) in cohort.iter().enumerate() {
        let state = match fate {
            "Th1" => th1,
            "Th2" => th2,
            _ => micronano::grn::State::ZERO,
        };
        let concentrations: Vec<f64> = (0..genes)
            .map(|g| if state.get(g) { unit } else { unit * 0.02 })
            .collect();
        let readings = array.measure(&concentrations, seed);
        for (g, &r) in readings.iter().enumerate() {
            measured.set(g, col, r);
        }
    }

    // 3. Rediscover the modules from the data alone.
    let threshold = 0.3; // occupancy units: between off (~0.05) and on (~0.65)
    let binary = binarize_with_threshold(&measured, threshold);
    let mined = enumerate_maximal(
        &binary,
        &MinerConfig {
            min_rows: 3,
            min_cols: 8,
            ..MinerConfig::default()
        },
    );

    println!("bio-discovery: rediscovering Th fates from noisy array data\n");
    let mut t = Table::new(
        "modules",
        "maximal biclusters found in the measured matrix",
        &["module", "genes", "samples", "gene names"],
    );
    for (k, b) in mined.biclusters.iter().enumerate() {
        let names: Vec<&str> = b.rows.iter().map(|&g| net.gene_name(g)).collect();
        t.row_owned(vec![
            format!("M{k}"),
            b.rows.len().to_string(),
            b.cols.len().to_string(),
            names.join("+"),
        ]);
    }
    println!("{t}");

    // Check the discovery against the network's own signatures.
    let th1_genes: Vec<usize> = (0..genes).filter(|&g| th1.get(g)).collect();
    let th2_genes: Vec<usize> = (0..genes).filter(|&g| th2.get(g)).collect();
    let best_match = |signature: &[usize]| -> f64 {
        mined
            .biclusters
            .iter()
            .map(|b| {
                let hit = signature.iter().filter(|g| b.rows.contains(g)).count();
                hit as f64 / signature.len() as f64
            })
            .fold(0.0, f64::max)
    };
    println!(
        "Th1 signature ({} genes) best module coverage: {:.0}%",
        th1_genes.len(),
        best_match(&th1_genes) * 100.0
    );
    println!(
        "Th2 signature ({} genes) best module coverage: {:.0}%",
        th2_genes.len(),
        best_match(&th2_genes) * 100.0
    );
    println!(
        "\nreading: without being told the network, biclustering the sensed\n\
         matrix recovers the same gene modules the regulatory model defines —\n\
         the keynote's bio-discovery loop, closed."
    );
    Ok(())
}
