//! Cluster sweep: one mixed-assay batch scheduled over real worker
//! processes, twice — framed loopback TCP and a spool directory — with
//! a crash injected to show the scheduler requeueing onto survivors.
//!
//! Runs `conformance_corpus(42)` four ways — serial, in-process
//! loopback cluster, TCP cluster, spool cluster — and proves the
//! per-scenario digests identical across all four. Prints per-worker
//! shard placement and requeue counts for each transport, then kills a
//! TCP worker mid-shard and shows the survivors absorbing its work
//! without a single digest moving.
//!
//! The worker binary ships with the package; build it first:
//!
//! ```sh
//! cargo build --release --bin dist_worker
//! cargo run   --release --example cluster_sweep
//! ```
//!
//! (Without the binary the scheduler still completes — every shard
//! degrades to in-process recovery and is listed as such.)

use micronano::core::report::Table;
use micronano::core::runner::{conformance_corpus, ClusterConfig, Runner};
use micronano::dist::{
    Cluster, ClusterReport, DistFault, FaultMode, InProcess, SpoolTransport, TcpTransport,
};

fn placements(report: &ClusterReport) -> String {
    report
        .placements
        .iter()
        .map(|p| {
            let worker = p.worker.as_deref().unwrap_or("local");
            format!("s{}→{worker}({}×)", p.shard.0, p.attempts)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("micronano cluster_sweep — one corpus across a cluster\n");
    let corpus = conformance_corpus(42);
    let serial = Runner::serial().run(&corpus);
    let digests = serial.digests();
    let config = ClusterConfig::new().workers(3).shards(6);

    let in_process = Cluster::new(InProcess::new(), config).run(&corpus);
    let tcp = Cluster::new(TcpTransport::bind()?, config).run(&corpus);
    let spool = Cluster::new(SpoolTransport::ephemeral()?, config).run(&corpus);

    let mut t = Table::new(
        "transports",
        "one corpus, four execution modes",
        &[
            "mode",
            "scenarios",
            "workers seen",
            "requeues",
            "recovered",
            "digests == serial",
        ],
    );
    t.row_owned(vec![
        "serial".to_owned(),
        serial.stats.totals().scenarios.to_string(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "yes".to_owned(),
    ]);
    for (mode, report) in [
        ("cluster: in-process", &in_process),
        ("cluster: tcp", &tcp),
        ("cluster: spool", &spool),
    ] {
        let mut workers: Vec<&str> = report
            .placements
            .iter()
            .filter_map(|p| p.worker.as_deref())
            .collect();
        workers.sort_unstable();
        workers.dedup();
        let same = report
            .outcomes
            .iter()
            .map(|o| o.digest())
            .collect::<Vec<_>>()
            == digests;
        t.row_owned(vec![
            mode.to_owned(),
            report.stats.totals().scenarios.to_string(),
            workers.len().to_string(),
            report.requeues.to_string(),
            report.recovered.len().to_string(),
            if same { "yes" } else { "NO" }.to_owned(),
        ]);
        assert!(same, "{mode} must not move a digest");
    }
    println!("{t}");
    for (mode, report) in [("tcp", &tcp), ("spool", &spool)] {
        println!("{mode} placement: {}", placements(report));
    }

    // Now kill one TCP worker mid-shard and watch the survivors absorb
    // its work.
    println!("\ninjecting a crash into one tcp worker...");
    let crashed = Cluster::new(TcpTransport::bind()?, config)
        .with_fault(DistFault {
            worker: 0,
            mode: FaultMode::Crash,
        })
        .run(&corpus);
    let ok = crashed
        .outcomes
        .iter()
        .map(|o| o.digest())
        .collect::<Vec<_>>()
        == digests;
    println!(
        "crash injection: worker w0 died mid-shard; {} requeue(s), placement {}; digests {} serial",
        crashed.requeues,
        placements(&crashed),
        if ok { "still match" } else { "DIVERGED from" },
    );
    assert!(ok, "recovery must not move a digest");
    Ok(())
}
