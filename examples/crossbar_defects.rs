//! Beyond-CMOS computation (keynote slides 8–9): mapping logic onto a
//! defective nanowire crossbar.
//!
//! ```sh
//! cargo run --release --example crossbar_defects
//! ```

use micronano::core::report::{fmt_f64, Table};
use micronano::crossbar::array::CrossbarArray;
use micronano::crossbar::logic::LogicFunction;
use micronano::crossbar::mapping::{map_function, mapping_yield};

fn main() {
    println!("nano-crossbar design: living with defective junctions\n");

    // One concrete fabric instance and function.
    let fabric = CrossbarArray::with_defects(18, 12, 0.08, 0.5, 42);
    let f = LogicFunction::random(12, 12, 4, 7);
    println!(
        "fabric: 18×12 junctions, {} defective ({:.1}%), {} pristine rows",
        fabric.defect_count(),
        fabric.defect_rate() * 100.0,
        fabric.pristine_rows()
    );
    match map_function(&fabric, &f) {
        Some(m) => {
            println!(
                "mapped all {} product terms; term→row assignment: {:?}\n",
                f.terms().len(),
                m.row_of_term
            );
            assert!(m.verify(&fabric, &f));
        }
        None => println!("this instance cannot host the function\n"),
    }

    // The yield picture.
    let mut t = Table::new(
        "yield",
        "mapping yield % (16 inputs, 12 terms, 400 instances per cell)",
        &["defect rate", "×1.0 rows", "×1.5", "×2.0", "×3.0"],
    );
    for &rate in &[0.0f64, 0.05, 0.1, 0.2, 0.3] {
        let mut row = vec![fmt_f64(rate)];
        for &redundancy in &[1.0f64, 1.5, 2.0, 3.0] {
            row.push(fmt_f64(
                mapping_yield(16, 12, 4, redundancy, rate, 400, 42) * 100.0,
            ));
        }
        t.row_owned(row);
    }
    println!("{t}");
    println!(
        "reading: per-instance matching turns a fabric that is useless at\n\
         10% defects into one that yields ~100% — \"how do we design with\n\
         these technologies\" (slide 8), answered with redundancy plus EDA."
    );
}
