//! Environmental monitoring (keynote slides 35–40): a 200-node sensor
//! field under different collection protocols, failure injection, and
//! energy-harvesting management policies.
//!
//! ```sh
//! cargo run --release --example environmental_network
//! ```

use micronano::core::report::{fmt_f64, Table};
use micronano::wsn::field::Field;
use micronano::wsn::harvest::{simulate_harvesting, DutyPolicy, HarvestConfig};
use micronano::wsn::protocol::Protocol;
use micronano::wsn::sim::{simulate_lifetime, LifetimeConfig};

fn main() {
    let field = Field::random(200, 200.0, 7);
    let cfg = LifetimeConfig {
        max_rounds: 5_000,
        ..LifetimeConfig::default()
    };

    println!("environmental sensor network: 200 nodes on 200 m × 200 m\n");

    let mut t = Table::new(
        "protocols",
        "collection protocol comparison",
        &[
            "protocol",
            "first death",
            "half dead",
            "delivered %",
            "avg coverage %",
        ],
    );
    let protocols = [
        Protocol::Direct,
        Protocol::tree(50.0, false),
        Protocol::tree(50.0, true),
        Protocol::cluster(0.1, false),
        Protocol::cluster(0.1, true),
    ];
    for p in protocols {
        let s = simulate_lifetime(&field, p, &cfg);
        t.row_owned(vec![
            p.label(),
            s.first_death_round.to_string(),
            s.half_death_round.to_string(),
            fmt_f64(s.delivered_ratio * 100.0),
            fmt_f64(s.avg_coverage * 100.0),
        ]);
    }
    println!("{t}");

    let mut f = Table::new(
        "failures",
        "redundancy under random node failures (cluster+agg)",
        &["failure rate / round", "half dead", "avg coverage %"],
    );
    for rate in [0.0, 0.0005, 0.002, 0.01] {
        let s = simulate_lifetime(
            &field,
            Protocol::cluster(0.1, true),
            &LifetimeConfig {
                failure_rate: rate,
                ..cfg.clone()
            },
        );
        f.row_owned(vec![
            fmt_f64(rate),
            s.half_death_round.to_string(),
            fmt_f64(s.avg_coverage * 100.0),
        ]);
    }
    println!("{f}");

    let hcfg = HarvestConfig::default();
    let mut h = Table::new(
        "harvest",
        "30 days on solar harvesting — management policies",
        &[
            "policy",
            "uptime %",
            "useful work (h)",
            "dead slots",
            "wasted (J)",
        ],
    );
    let policies = [
        DutyPolicy::Fixed(0.9),
        DutyPolicy::Fixed(0.05),
        DutyPolicy::Greedy {
            threshold: 0.3,
            duty_high: 0.9,
            duty_low: 0.05,
        },
        DutyPolicy::EnergyNeutral { alpha: 0.01 },
    ];
    for p in policies {
        let s = simulate_harvesting(p, &hcfg);
        h.row_owned(vec![
            format!(
                "{}{}",
                p.label(),
                if let DutyPolicy::Fixed(d) = p {
                    format!("({d})")
                } else {
                    String::new()
                }
            ),
            fmt_f64(s.uptime * 100.0),
            fmt_f64(s.work / 3600.0),
            s.dead_slots.to_string(),
            fmt_f64(s.wasted),
        ]);
    }
    println!("{h}");
    println!(
        "reading: aggregation and clustering extend lifetime; the\n\
         energy-neutral policy converts harvested energy into the most\n\
         useful work without brown-outs — \"convert information into energy\n\
         savings\" (slide 38)."
    );
}
