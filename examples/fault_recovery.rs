//! Fault recovery sweep: how much of the array can die before the assay
//! compiler gives up?
//!
//! Sweeps the dead-electrode fraction from 0% to 10% on the standard
//! 16×16 array, recompiling the 4-plex immunoassay around each fault map
//! and reporting what the recovery cost: makespan inflation, extra
//! stalls, reroute attempts and sacrificed waste transports. Finishes
//! with one end-to-end pipeline run on a damaged chip.
//!
//! ```sh
//! cargo run --example fault_recovery
//! ```

use micronano::core::labchip::{LabChipPipeline, PipelineConfig};
use micronano::core::report::{fmt_f64, Table};
use micronano::fluidics::assay::multiplex_immunoassay;
use micronano::fluidics::compiler::{compile, CompilerConfig};
use micronano::fluidics::geometry::Grid;
use micronano::fluidics::{compile_with_faults, FaultConfig, FaultModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("micronano fault recovery — dead-electrode sweep, 16×16 array\n");

    let cfg = CompilerConfig::default();
    let grid = Grid::new(cfg.grid_width, cfg.grid_height)?;
    let assay = multiplex_immunoassay(4);
    let baseline = compile(&assay, &cfg)?.stats;
    const SEEDS: u64 = 10;

    let mut sweep = Table::new(
        "sweep",
        "4-plex immunoassay vs dead-electrode fraction (10 seeds each)",
        &[
            "dead %",
            "recovered",
            "makespan x",
            "stalls",
            "reroutes",
            "abandoned",
        ],
    );
    for pct in 0..=10u32 {
        let mut recovered = 0u64;
        let mut ratio_acc = 0.0;
        let mut stalls = 0u64;
        let mut reroutes = 0u64;
        let mut abandoned = 0u64;
        for seed in 0..SEEDS {
            let fc = FaultConfig::dead(seed, f64::from(pct) / 100.0);
            let model = FaultModel::generate(&fc, &grid);
            let Ok(compiled) = compile_with_faults(&assay, &cfg, &model) else {
                continue;
            };
            recovered += 1;
            ratio_acc += f64::from(compiled.stats.makespan) / f64::from(baseline.makespan);
            stalls += u64::from(compiled.stats.route_stalls);
            reroutes += u64::from(compiled.stats.reroutes);
            abandoned += u64::from(compiled.stats.abandoned);
        }
        let mean = |acc: f64| {
            if recovered > 0 {
                acc / recovered as f64
            } else {
                f64::NAN
            }
        };
        sweep.row(&[
            &pct.to_string(),
            &format!("{recovered}/{SEEDS}"),
            &fmt_f64(mean(ratio_acc)),
            &fmt_f64(mean(stalls as f64)),
            &fmt_f64(mean(reroutes as f64)),
            &fmt_f64(mean(abandoned as f64)),
        ]);
    }
    println!("{sweep}");

    // End to end: the diagnosis pipeline on a chip that has seen better
    // days — 5% dead, 5% degraded, a couple of transient outages.
    let pipeline = LabChipPipeline::new(PipelineConfig {
        fault: Some(FaultConfig {
            seed: 7,
            dead_fraction: 0.05,
            degraded_fraction: 0.05,
            transient_count: 2,
            ..FaultConfig::default()
        }),
        ..PipelineConfig::default()
    });
    let report = pipeline.run(42)?;
    let mut e2e = Table::new(
        "e2e",
        "pipeline on a damaged chip (5% dead, 5% degraded, 2 transients)",
        &["metric", "value"],
    );
    e2e.row(&["dead injected", &report.faults.injected_dead.to_string()]);
    e2e.row(&[
        "degraded injected",
        &report.faults.injected_degraded.to_string(),
    ]);
    e2e.row(&[
        "transients injected",
        &report.faults.injected_transient.to_string(),
    ]);
    e2e.row(&["makespan (ticks)", &report.routing.makespan.to_string()]);
    e2e.row(&["forced stalls", &report.faults.forced_stalls.to_string()]);
    e2e.row(&["reroute attempts", &report.faults.reroutes.to_string()]);
    e2e.row(&[
        "abandoned transports",
        &report.faults.abandoned_transports.to_string(),
    ]);
    e2e.row(&[
        "samples dropped",
        &report.faults.samples_dropped.to_string(),
    ]);
    e2e.row(&["recovery", &fmt_f64(report.interpretation.recovery)]);
    println!("{e2e}");

    println!(
        "verdict: the damaged chip still {} the implanted biology.",
        if report.interpretation.recovery > 0.7 {
            "fully recovers"
        } else {
            "partially recovers"
        }
    );
    Ok(())
}
