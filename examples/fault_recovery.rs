//! Fault recovery sweep: how much of the array can die before the assay
//! compiler gives up?
//!
//! Sweeps the dead-electrode fraction from 0% to 10% on the standard
//! 16×16 array, recompiling the 4-plex immunoassay around each fault map
//! and reporting what the recovery cost: makespan inflation, extra
//! stalls, reroute attempts and sacrificed waste transports. The 110
//! recompiles run as one batch on the deterministic scenario engine,
//! spread over every hardware thread. Finishes with one end-to-end
//! pipeline run on a damaged chip.
//!
//! ```sh
//! cargo run --example fault_recovery
//! ```

use micronano::core::labchip::{LabChipPipeline, PipelineConfig};
use micronano::core::report::{fmt_f64, Table};
use micronano::core::runner::{
    AssayKind, FluidicsScenario, RunnerConfig, Scenario, ScenarioOutcome,
};
use micronano::fluidics::assay::multiplex_immunoassay;
use micronano::fluidics::compiler::{compile, CompilerConfig};
use micronano::fluidics::FaultConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("micronano fault recovery — dead-electrode sweep, 16×16 array\n");

    let cfg = CompilerConfig::default();
    let baseline = compile(&multiplex_immunoassay(4), &cfg)?.stats;
    const SEEDS: u64 = 10;

    // One scenario per (fraction, fault map); the engine fans the batch
    // out across workers and returns outcomes in submission order.
    let mut scenarios = Vec::new();
    for pct in 0..=10u32 {
        for seed in 0..SEEDS {
            scenarios.push(Scenario::FluidicsCompile(FluidicsScenario {
                assay: AssayKind::Multiplex,
                plex: 4,
                grid_side: cfg.grid_width,
                dead_fraction: f64::from(pct) / 100.0,
                fault_seed: seed,
            }));
        }
    }
    let outcomes = RunnerConfig::new()
        .workers(0)
        .cache(false)
        .build()
        .run(&scenarios)
        .outcomes;

    let mut sweep = Table::new(
        "sweep",
        "4-plex immunoassay vs dead-electrode fraction (10 seeds each)",
        &[
            "dead %",
            "recovered",
            "makespan x",
            "stalls",
            "reroutes",
            "abandoned",
        ],
    );
    for pct in 0..=10u32 {
        let mut recovered = 0u64;
        let mut ratio_acc = 0.0;
        let mut stall_acc = 0u64;
        let mut reroute_acc = 0u64;
        let mut abandoned_acc = 0u64;
        for seed in 0..SEEDS {
            let i = (u64::from(pct) * SEEDS + seed) as usize;
            let ScenarioOutcome::Fluidics {
                compiled,
                makespan,
                stalls,
                reroutes,
                abandoned,
                ..
            } = outcomes[i]
            else {
                unreachable!("fluidics scenarios yield fluidics outcomes");
            };
            if !compiled {
                continue;
            }
            recovered += 1;
            ratio_acc += f64::from(makespan) / f64::from(baseline.makespan);
            stall_acc += u64::from(stalls);
            reroute_acc += u64::from(reroutes);
            abandoned_acc += u64::from(abandoned);
        }
        let mean = |acc: f64| {
            if recovered > 0 {
                acc / recovered as f64
            } else {
                f64::NAN
            }
        };
        sweep.row(&[
            &pct.to_string(),
            &format!("{recovered}/{SEEDS}"),
            &fmt_f64(mean(ratio_acc)),
            &fmt_f64(mean(stall_acc as f64)),
            &fmt_f64(mean(reroute_acc as f64)),
            &fmt_f64(mean(abandoned_acc as f64)),
        ]);
    }
    println!("{sweep}");

    // End to end: the diagnosis pipeline on a chip that has seen better
    // days — 5% dead, 5% degraded, a couple of transient outages.
    let pipeline = LabChipPipeline::new(PipelineConfig {
        fault: Some(FaultConfig {
            seed: 7,
            dead_fraction: 0.05,
            degraded_fraction: 0.05,
            transient_count: 2,
            ..FaultConfig::default()
        }),
        ..PipelineConfig::default()
    });
    let report = pipeline.run(42)?;
    let mut e2e = Table::new(
        "e2e",
        "pipeline on a damaged chip (5% dead, 5% degraded, 2 transients)",
        &["metric", "value"],
    );
    e2e.row(&["dead injected", &report.faults.injected_dead.to_string()]);
    e2e.row(&[
        "degraded injected",
        &report.faults.injected_degraded.to_string(),
    ]);
    e2e.row(&[
        "transients injected",
        &report.faults.injected_transient.to_string(),
    ]);
    e2e.row(&["makespan (ticks)", &report.routing.makespan.to_string()]);
    e2e.row(&["forced stalls", &report.faults.forced_stalls.to_string()]);
    e2e.row(&["reroute attempts", &report.faults.reroutes.to_string()]);
    e2e.row(&[
        "abandoned transports",
        &report.faults.abandoned_transports.to_string(),
    ]);
    e2e.row(&[
        "samples dropped",
        &report.faults.samples_dropped.to_string(),
    ]);
    e2e.row(&["recovery", &fmt_f64(report.interpretation.recovery)]);
    println!("{e2e}");

    println!(
        "verdict: the damaged chip still {} the implanted biology.",
        if report.interpretation.recovery > 0.7 {
            "fully recovers"
        } else {
            "partially recovers"
        }
    );
    Ok(())
}
