//! The slide-10 NoC synthesis flow, executable: communication graph in;
//! synthesized topology, certified routes and simulated latency out.
//! Also demonstrates the slide-11 3-D (TSV) comparison.
//!
//! ```sh
//! cargo run --release --example noc_designflow
//! ```

use micronano::core::explore::explore_noc_with;
use micronano::core::report::{fmt_f64, Table};
use micronano::core::runner::RunnerConfig;
use micronano::noc::graph::CommGraph;
use micronano::noc::power::{area_proxy, PowerModel};
use micronano::noc::routing::compute_routes;
use micronano::noc::sim::{simulate, SimConfig};
use micronano::noc::synthesis::{synthesize, SynthesisConfig};
use micronano::noc::topology::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = CommGraph::hotspot(16, 1.0);
    let pm = PowerModel::default();
    let sim_cfg = SimConfig::default();

    println!("NoC design flow: 16-core hotspot application\n");

    // Candidate fabrics: a regular mesh versus a synthesized topology.
    let mesh = Topology::mesh2d(4, 4);
    let custom = synthesize(&app, &SynthesisConfig::default());

    let mut t = Table::new(
        "fabrics",
        "mesh versus synthesized topology",
        &[
            "fabric",
            "routers",
            "links",
            "deadlock-free",
            "weighted hops",
            "energy/flit",
            "area proxy",
            "sim latency (cycles)",
        ],
    );
    for (name, topo) in [("4×4 mesh", &mesh), ("synthesized", &custom)] {
        let routes = compute_routes(topo, &app)?;
        let stats = simulate(topo, &app, &routes, 0.0008, &sim_cfg);
        t.row_owned(vec![
            name.to_owned(),
            topo.routers().to_string(),
            topo.links().len().to_string(),
            routes.deadlock_free.to_string(),
            fmt_f64(routes.weighted_hops),
            fmt_f64(pm.traffic_energy(topo, &app, &routes.paths)),
            fmt_f64(area_proxy(topo)),
            fmt_f64(stats.latency.mean()),
        ]);
    }
    println!("{t}");

    // Design-space exploration over synthesis parameters, fanned out
    // across every hardware thread by the scenario engine (workers = 0);
    // the conformance corpus pins this to the serial result.
    let (points, front) = explore_noc_with(
        &app,
        &[2, 3, 4, 8],
        &[0, 2, 4, 8],
        RunnerConfig::new().workers(0).cache(false),
    );
    let mut e = Table::new(
        "dse",
        "synthesis design space (Pareto-optimal rows marked *)",
        &[
            "cluster",
            "shortcuts",
            "weighted hops",
            "energy/flit",
            "area",
        ],
    );
    for (i, p) in points.iter().enumerate() {
        let mark = if front.contains(&i) { "*" } else { "" };
        e.row_owned(vec![
            format!("{}{mark}", p.max_cluster),
            p.shortcuts.to_string(),
            fmt_f64(p.weighted_hops),
            fmt_f64(p.energy),
            fmt_f64(p.area),
        ]);
    }
    println!("{e}");

    // 3-D: same router count, shorter diameter, cheaper traffic.
    let app64 = CommGraph::uniform(64, 1.0);
    let flat = Topology::mesh2d(8, 8);
    let cube = Topology::mesh3d(4, 4, 4);
    let mut d3 = Table::new(
        "3d",
        "2-D versus 3-D integration (64 cores, uniform traffic)",
        &["fabric", "avg hops", "energy/flit", "sim latency (cycles)"],
    );
    for (name, topo) in [("8×8 mesh", &flat), ("4×4×4 3-D mesh", &cube)] {
        let routes = compute_routes(topo, &app64)?;
        let stats = simulate(topo, &app64, &routes, 0.00005, &sim_cfg);
        d3.row_owned(vec![
            name.to_owned(),
            fmt_f64(routes.avg_hops),
            fmt_f64(pm.traffic_energy(topo, &app64, &routes.paths)),
            fmt_f64(stats.latency.mean()),
        ]);
    }
    println!("{d3}");
    println!(
        "reading: the synthesized fabric needs fewer hops on the traffic\n\
         that matters, and stacking the same cores in 3-D cuts both hop\n\
         count and energy per flit — slides 10 and 11 as numbers."
    );
    Ok(())
}
