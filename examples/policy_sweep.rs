//! A9 — composable energy-policy sweep: policy × irradiance profile.
//!
//! Runs every policy in a small library — the three historical
//! primitives plus composites built from the `mns-policy` combinators —
//! against three irradiance profiles (clear alpine, temperate, overcast
//! winter), and then a mixed-fleet lifetime simulation where half the
//! nodes run duty-cycled under an energy-neutral composite.
//!
//! ```sh
//! cargo run --release --example policy_sweep
//! ```

use micronano::core::report::{fmt_f64, Table};
use micronano::policy::{PolicyAssignment, PolicyExpr};
use micronano::wsn::field::Field;
use micronano::wsn::harvest::{simulate_policy, HarvestConfig, SolarModel};
use micronano::wsn::protocol::Protocol;
use micronano::wsn::sim::{simulate_lifetime, LifetimeConfig};

/// The policy library swept by A9. Labels come from `PolicyExpr::label`.
fn library() -> Vec<PolicyExpr> {
    vec![
        PolicyExpr::Fixed(0.9),
        PolicyExpr::Fixed(0.05),
        PolicyExpr::greedy(0.3, 0.9, 0.05).unwrap(),
        PolicyExpr::energy_neutral(0.01).unwrap(),
        PolicyExpr::forecast(0.2).unwrap(),
        // Energy-neutral with battery-health derating and a service floor.
        PolicyExpr::clamp(
            PolicyExpr::derate(PolicyExpr::energy_neutral(0.01).unwrap(), 0.05, 0.5).unwrap(),
            0.02,
            1.0,
        )
        .unwrap(),
        // Conservation mode below 25 % charge, back to normal above 60 %.
        PolicyExpr::hysteresis(
            0.25,
            0.6,
            PolicyExpr::energy_neutral(0.01).unwrap(),
            PolicyExpr::Fixed(0.05),
        )
        .unwrap(),
    ]
}

fn profiles() -> Vec<(&'static str, SolarModel)> {
    vec![
        (
            "clear",
            SolarModel {
                peak_power: 0.08,
                day_length: 86_400.0,
                cloudiness: 0.1,
            },
        ),
        ("temperate", SolarModel::default()),
        (
            "overcast",
            SolarModel {
                peak_power: 0.03,
                day_length: 86_400.0,
                cloudiness: 0.9,
            },
        ),
    ]
}

fn main() {
    println!("A9 — composable energy-policy sweep (30 days per cell)\n");

    let mut t = Table::new(
        "policy-sweep",
        "uptime % / useful work (h) per policy × irradiance profile",
        &["policy", "clear", "temperate", "overcast"],
    );
    for policy in library() {
        let name = if let PolicyExpr::Fixed(d) = &policy {
            format!("fixed({d})")
        } else {
            policy.label()
        };
        let mut row = vec![name];
        for (_, solar) in profiles() {
            let cfg = HarvestConfig {
                solar,
                ..HarvestConfig::default()
            };
            let s = simulate_policy(&policy, &cfg);
            row.push(format!(
                "{} / {}",
                fmt_f64(s.uptime * 100.0),
                fmt_f64(s.work / 3600.0)
            ));
        }
        t.row_owned(row);
    }
    println!("{t}");

    let mut d = Table::new(
        "derate",
        "battery-health derating on the overcast profile",
        &[
            "policy",
            "derate events",
            "equiv. cycles",
            "min battery (J)",
        ],
    );
    let (_, overcast) = profiles().pop().map(|p| (p.0, p.1)).unwrap();
    let cfg = HarvestConfig {
        solar: overcast,
        days: 90,
        ..HarvestConfig::default()
    };
    for policy in [
        PolicyExpr::energy_neutral(0.01).unwrap(),
        PolicyExpr::derate(PolicyExpr::energy_neutral(0.01).unwrap(), 0.05, 0.5).unwrap(),
        PolicyExpr::derate(PolicyExpr::Fixed(0.9), 0.05, 0.5).unwrap(),
    ] {
        let s = simulate_policy(&policy, &cfg);
        d.row_owned(vec![
            policy.label(),
            s.derate_events.to_string(),
            fmt_f64(s.cycles),
            fmt_f64(s.min_battery),
        ]);
    }
    println!("{d}");

    // Mixed fleet: alternate full-power and energy-neutral nodes and
    // compare against the all-on baseline.
    let field = Field::random(120, 180.0, 11);
    let base = LifetimeConfig {
        max_rounds: 3_000,
        ..LifetimeConfig::default()
    };
    let mut f = Table::new(
        "fleet",
        "mixed-fleet lifetime under cluster+agg collection",
        &["assignment", "first death", "half dead", "avg coverage %"],
    );
    let assignments: Vec<(String, Option<PolicyAssignment>)> = vec![
        ("none (always on)".to_owned(), None),
        (
            "uniform energy-neutral".to_owned(),
            Some(PolicyAssignment::Uniform(
                PolicyExpr::energy_neutral(0.01).unwrap(),
            )),
        ),
        (
            "alternating full / neutral".to_owned(),
            Some(PolicyAssignment::RoundRobin(vec![
                PolicyExpr::Fixed(1.0),
                PolicyExpr::energy_neutral(0.01).unwrap(),
            ])),
        ),
    ];
    for (name, policies) in assignments {
        let s = simulate_lifetime(
            &field,
            Protocol::cluster(0.1, true),
            &LifetimeConfig {
                policies,
                ..base.clone()
            },
        );
        f.row_owned(vec![
            name,
            s.first_death_round.to_string(),
            s.half_death_round.to_string(),
            fmt_f64(s.avg_coverage * 100.0),
        ]);
    }
    println!("{f}");
    println!(
        "reading: the composable engine keeps the energy-neutral shape\n\
         (high uptime at high work) across profiles; derating trades a\n\
         little work for bounded battery wear; and duty-cycling even half\n\
         the fleet defers first death without hurting coverage."
    );
}
