//! Profile an instrumented scenario batch end to end.
//!
//! Enables telemetry with the wall clock, runs a mixed batch (fluidics
//! compiles, a lab-on-chip pipeline, NoC design points, WSN lifetimes,
//! a harvesting policy and a GRN knockout) across every hardware thread,
//! then exports all three profile formats and validates each one:
//!
//! * `target/profile/trace.json` — Chrome Trace Event JSON; load in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! * `target/profile/folded.txt` — flamegraph folded stacks for
//!   `flamegraph.pl` / inferno.
//! * `target/profile/metrics.txt` — plain-text counters + histograms.
//!
//! ```sh
//! cargo run --release --example profile_run
//! ```

use std::sync::Arc;

use micronano::core::runner::{
    AssayKind, FluidicsScenario, GrnModel, HarvestScenario, KnockoutScenario, LabChipScenario,
    NocScenario, Runner, Scenario, WsnScenario,
};
use micronano::noc::graph::CommGraph;
use micronano::policy::PolicyExpr;
use micronano::telemetry;
use micronano::wsn::protocol::Protocol;

fn mixed_batch() -> Vec<Scenario> {
    let mut batch = vec![
        Scenario::FluidicsCompile(FluidicsScenario {
            assay: AssayKind::Multiplex,
            plex: 4,
            grid_side: 16,
            dead_fraction: 0.04,
            fault_seed: 7,
        }),
        Scenario::LabChip(LabChipScenario {
            assay: AssayKind::Multiplex,
            seed: 42,
            samples_per_run: 4,
            dead_fraction: 0.02,
            fault_seed: 9,
        }),
        Scenario::WsnLifetime(WsnScenario {
            nodes: 40,
            side: 120.0,
            protocol: Protocol::tree(45.0, true),
            failure_rate: 0.0,
            max_rounds: 400,
            seed: 3,
            policies: None,
        }),
        Scenario::Harvest(HarvestScenario {
            policy: PolicyExpr::EnergyNeutral { alpha: 0.01 },
            days: 10,
            cloudiness: 0.4,
            seed: 5,
        }),
        Scenario::Knockout(KnockoutScenario {
            model: GrnModel::THelper,
            knockout: Some("GATA3".to_owned()),
        }),
    ];
    let app = CommGraph::hotspot(16, 1.0);
    for &(max_cluster, shortcuts) in &[(2usize, 0usize), (4, 2), (4, 4), (8, 4)] {
        batch.push(Scenario::NocPoint(NocScenario {
            app: app.clone(),
            max_cluster,
            shortcuts,
        }));
    }
    batch
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("micronano profile_run — instrumented batch, all exporters\n");

    telemetry::enable(Arc::new(telemetry::WallClock::default()));
    let batch = mixed_batch();
    let mut runner = Runner::new(Default::default());
    let report = runner.run(&batch);
    let (outcomes, stats) = (report.outcomes, report.stats);
    telemetry::disable();

    println!(
        "ran {} scenarios on {} workers: {} evaluated, {} cached, {} deduped, {} steals",
        outcomes.len(),
        runner.workers(),
        stats.executed,
        stats.cache_hits,
        stats.deduped,
        stats.steals,
    );
    for ws in &stats.per_worker {
        println!(
            "  worker {}: executed {:>2}  steals {:>2}  cache hits {:>2}",
            ws.worker, ws.executed, ws.steals, ws.cache_hits
        );
    }
    println!("  load balance: {:.2}\n", stats.balance());

    let trace = telemetry::take_trace();
    let snap = telemetry::snapshot();

    let dir = std::path::Path::new("target/profile");
    std::fs::create_dir_all(dir)?;

    let chrome = telemetry::chrome_trace(&trace);
    let summary = telemetry::validate_chrome_trace(&chrome).map_err(|e| format!("trace: {e}"))?;
    std::fs::write(dir.join("trace.json"), &chrome)?;
    println!(
        "trace.json    {} events, {} spans, {} lanes — valid",
        summary.events, summary.spans, summary.tracks
    );

    let folded = telemetry::folded_stacks(&trace);
    let stacks = telemetry::validate_folded(&folded).map_err(|e| format!("folded: {e}"))?;
    std::fs::write(dir.join("folded.txt"), &folded)?;
    println!("folded.txt    {stacks} distinct stacks — valid");

    let text = snap.to_text();
    let series = telemetry::validate_snapshot_text(&text).map_err(|e| format!("metrics: {e}"))?;
    std::fs::write(dir.join("metrics.txt"), &text)?;
    println!("metrics.txt   {series} series — valid\n");

    println!("deepest span chain: {} levels", deepest(&trace));
    println!("metrics snapshot:\n{text}");
    println!("wrote target/profile/{{trace.json, folded.txt, metrics.txt}}");
    Ok(())
}

fn deepest(trace: &telemetry::Trace) -> usize {
    trace.roots.iter().map(|r| r.depth()).max().unwrap_or(0)
}
