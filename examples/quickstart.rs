//! Quickstart: the computer-aided-diagnosis pipeline in one page.
//!
//! Runs the full lab-on-chip stack — assay compilation, noisy sensing,
//! exact ZDD biclustering — and prints the end-to-end report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use micronano::core::labchip::{LabChipPipeline, PipelineConfig};
use micronano::core::report::{fmt_f64, Table};
use micronano::fluidics::assay::multiplex_immunoassay;
use micronano::fluidics::compiler::{compile, CompilerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = LabChipPipeline::new(PipelineConfig::default());
    let report = pipeline.run(42)?;

    println!("micronano quickstart — lab-on-chip, end to end\n");

    // A snapshot of the chip at its busiest tick: # = energized electrode.
    let compiled = compile(&multiplex_immunoassay(4), &CompilerConfig::default())?;
    let busiest = (0..compiled.stats.makespan)
        .max_by_key(|&t| compiled.program.active_at(t).len())
        .unwrap_or(0);
    println!(
        "electrode array at tick {busiest} of {} ({} electrodes energized):\n{}",
        compiled.stats.makespan,
        compiled.program.active_at(busiest).len(),
        compiled.program.render_tick(busiest, 16, 16)
    );

    let mut chip = Table::new(
        "chip",
        "microfluidic compile (4-plex immunoassay, 16×16 array)",
        &["metric", "value"],
    );
    chip.row(&["makespan (ticks)", &report.routing.makespan.to_string()]);
    chip.row(&["droplet moves", &report.routing.route_moves.to_string()]);
    chip.row(&["droplet stalls", &report.routing.route_stalls.to_string()]);
    chip.row(&["electrode activations", &report.routing.energy.to_string()]);
    chip.row(&["latency retries", &report.routing.retries.to_string()]);
    println!("{chip}");

    let mut sense = Table::new("sense", "sensing + interpretation", &["metric", "value"]);
    sense.row(&[
        "mean sensing error (expr units)",
        &fmt_f64(report.sensing_error),
    ]);
    sense.row(&[
        "maximal biclusters found",
        &report.mining.biclusters.len().to_string(),
    ]);
    sense.row(&["ZDD nodes for family", &report.mining.zdd_nodes.to_string()]);
    sense.row(&["recovery", &fmt_f64(report.interpretation.recovery)]);
    sense.row(&["relevance", &fmt_f64(report.interpretation.relevance)]);
    sense.row(&["F1", &fmt_f64(report.interpretation.f1)]);
    println!("{sense}");

    println!(
        "verdict: implanted expression modules were {} through the noisy chip.",
        if report.interpretation.recovery > 0.7 {
            "fully recovered"
        } else {
            "partially recovered"
        }
    );
    Ok(())
}
