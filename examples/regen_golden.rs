//! Regenerates the golden-run conformance corpus.
//!
//! Runs `mns_core::runner::conformance_corpus(42)` serially and rewrites
//! `tests/golden/corpus.txt` with one `label digest` line per scenario.
//! Run this after an intentional behaviour change, commit the diff with a
//! `[golden-update]` marker in the commit message (CI rejects golden
//! drift without it), and say in the commit body *why* the outcomes
//! moved.
//!
//! ```sh
//! cargo run --release --example regen_golden
//! ```

use micronano::core::runner::{conformance_corpus, Runner};

/// Seed of the committed corpus; `tests/conformance.rs` uses the same.
const CORPUS_SEED: u64 = 42;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = conformance_corpus(CORPUS_SEED);
    let outcomes = Runner::serial().run(&corpus).outcomes;

    let mut lines = String::new();
    lines.push_str("# Golden conformance digests — regenerate with\n");
    lines.push_str("#   cargo run --release --example regen_golden\n");
    lines.push_str("# and commit with a [golden-update] marker.\n");
    for (scenario, outcome) in corpus.iter().zip(&outcomes) {
        lines.push_str(&format!("{} {}\n", scenario.label(), outcome.digest()));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/corpus.txt");
    std::fs::write(path, &lines)?;
    println!("wrote {} digests to {path}", outcomes.len());
    Ok(())
}
