//! Multi-process sharded sweep: the golden corpus across real child
//! processes, with a deliberately crashed worker to show recovery.
//!
//! Runs `conformance_corpus(42)` three ways — serial, 4 in-process
//! shards, 4 `shard_worker` child processes — and proves the
//! per-scenario digests identical across all three. Then injects a
//! crash into one shard's worker and shows the driver requeueing it
//! in-process without a single digest moving.
//!
//! The worker binary ships with the package; build it first:
//!
//! ```sh
//! cargo build --release --bin shard_worker
//! cargo run   --release --example sharded_sweep
//! ```
//!
//! (Without the binary the driver still completes — every shard simply
//! degrades to in-process execution and is listed as recovered.)

use micronano::core::report::Table;
use micronano::core::runner::sharded::{run_sharded, ShardFault, ShardedConfig};
use micronano::core::runner::{conformance_corpus, Runner, RunnerConfig, ShardId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("micronano sharded_sweep — corpus across processes\n");
    let corpus = conformance_corpus(42);

    let serial = Runner::serial().run(&corpus);
    let in_process = RunnerConfig::new()
        .workers(1)
        .shards(4)
        .build()
        .run(&corpus);
    let multi = run_sharded(
        &corpus,
        &ShardedConfig {
            shards: 4,
            ..ShardedConfig::default()
        },
    )?;

    let mut t = Table::new(
        "modes",
        "one corpus, three execution modes",
        &[
            "mode",
            "scenarios",
            "executed",
            "shards",
            "recovered",
            "digests == serial",
        ],
    );
    let digests = serial.digests();
    for (mode, totals, shards, recovered, same) in [
        ("serial", serial.stats.totals(), 1, 0, true),
        (
            "4 shards, in-process",
            in_process.stats.totals(),
            in_process.shards.len(),
            0,
            in_process.digests() == digests,
        ),
        (
            "4 child processes",
            multi.stats.totals(),
            multi.shards.len(),
            multi.recovered.len(),
            multi
                .outcomes
                .iter()
                .map(|o| o.digest())
                .collect::<Vec<_>>()
                == digests,
        ),
    ] {
        t.row_owned(vec![
            mode.to_owned(),
            totals.scenarios.to_string(),
            totals.executed.to_string(),
            shards.to_string(),
            recovered.to_string(),
            if same { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    println!("{t}");

    // Now kill a worker mid-shard and watch the driver recover.
    let crashed = run_sharded(
        &corpus,
        &ShardedConfig {
            shards: 4,
            fault: Some(ShardFault::Crash(ShardId(2))),
            ..ShardedConfig::default()
        },
    )?;
    let ok = crashed
        .outcomes
        .iter()
        .map(micronano::core::runner::ScenarioOutcome::digest)
        .collect::<Vec<_>>()
        == digests;
    println!(
        "crash injection: shard 2's worker exited mid-manifest; requeued {:?} \
         in-process; digests {} serial",
        crashed.recovered,
        if ok { "still match" } else { "DIVERGED from" },
    );
    assert!(ok, "recovery must not move a digest");
    Ok(())
}
