//! The slide-31 story: T-helper cell differentiation as a logic circuit,
//! with knock-outs as stuck-at-0 faults.
//!
//! ```sh
//! cargo run --example thelper_knockout
//! ```

use micronano::core::report::Table;
use micronano::grn::models::{t_helper, t_helper_with_inputs, th_fates, ThFate, ThInputs};
use micronano::grn::screen::{single_gene_screen, ScreenKind};
use micronano::grn::Perturbation;

fn fate_summary(fates: &[(micronano::grn::State, ThFate)]) -> String {
    let mut names: Vec<String> = fates.iter().map(|&(_, f)| f.to_string()).collect();
    names.sort();
    names.join(", ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("T-helper differentiation network (Mendoza & Xenarios 2006)\n");

    let wild = t_helper();
    let wt_fates = th_fates(&wild)?;

    let mut t = Table::new(
        "Th",
        "stable fates under perturbation (unstimulated inputs)",
        &["condition", "stable states", "fates"],
    );
    t.row_owned(vec![
        "wild type".into(),
        wt_fates.len().to_string(),
        fate_summary(&wt_fates),
    ]);

    for gene in ["GATA3", "Tbet", "STAT6", "STAT1", "IFNg", "IL4"] {
        let ko = wild.with_perturbation(&Perturbation::knock_out(gene))?;
        let fates = th_fates(&ko)?;
        t.row_owned(vec![
            format!("{gene} knock-out (stuck-at-0)"),
            fates.len().to_string(),
            fate_summary(&fates),
        ]);
    }
    let oe = wild.with_perturbation(&Perturbation::over_express("Tbet"))?;
    let fates = th_fates(&oe)?;
    t.row_owned(vec![
        "Tbet over-expression (stuck-at-1)".into(),
        fates.len().to_string(),
        fate_summary(&fates),
    ]);
    println!("{t}");

    // Show the detailed Th1 signature.
    let (th1_state, _) = wt_fates
        .iter()
        .find(|&&(_, f)| f == ThFate::Th1)
        .expect("wild type reaches Th1");
    println!(
        "Th1 expression signature: {}\n",
        wild.describe_state(*th1_state)
    );

    // Whole-network knock-out screen: which of the 23 genes are
    // phenotypic (change the steady-state landscape) at all?
    let screen = single_gene_screen(&wild, ScreenKind::KnockOuts)?;
    let phenotypic: Vec<&str> = screen.phenotypic().map(|e| e.perturbation.gene()).collect();
    println!(
        "knock-out screen: {} of {} genes are phenotypic: {}\n",
        phenotypic.len(),
        wild.len(),
        phenotypic.join(", ")
    );

    // Stimulation scenario: IL-12 present.
    let stimulated = t_helper_with_inputs(ThInputs {
        il12: true,
        ..ThInputs::default()
    });
    let fates = th_fates(&stimulated)?;
    println!(
        "with IL-12 stimulation: {} stable states ({})",
        fates.len(),
        fate_summary(&fates)
    );
    Ok(())
}
