//! Cluster worker: the long-lived endpoint half of `mns-dist`.
//!
//! Where `shard_worker` evaluates exactly one manifest and exits, a
//! `dist_worker` registers with a [`Cluster`](micronano::dist::Cluster)
//! scheduler, heartbeats on an interval, and evaluates every shard it is
//! assigned until told to shut down. Usage (normally spawned by a
//! transport, not by hand):
//!
//! ```sh
//! dist_worker --transport tcp   --connect 127.0.0.1:PORT \
//!             --name w0 [--threads 1] [--heartbeat-ms 50] [--metrics]
//! dist_worker --transport spool --dir /shared/spool \
//!             --name w0 [--threads 1] [--heartbeat-ms 50] [--metrics]
//! ```
//!
//! Exit codes: 0 clean shutdown, 1 result-delivery failure, 2 usage or
//! connect/register error, 3 injected crash, 4 stall cap elapsed.
//!
//! The `MNS_DIST_FAULT` environment variable (set by recovery tests)
//! injects faults on the *next* assignment: `crash` exits mid-shard,
//! `stall` keeps the process alive but silent past the scheduler's
//! liveness window, `corrupt` delivers an unparseable outcome payload.

use std::path::PathBuf;
use std::time::Duration;

use micronano::dist::worker::{run_spool_worker, run_tcp_worker};

enum Endpoint {
    Tcp { connect: String },
    Spool { dir: PathBuf },
}

struct Args {
    endpoint: Endpoint,
    name: String,
    threads: usize,
    heartbeat: Duration,
    metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut transport = None;
    let mut connect = None;
    let mut dir = None;
    let mut name = None;
    let mut threads = 1usize;
    let mut heartbeat = Duration::from_millis(50);
    let mut metrics = false;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--transport" => transport = Some(value("--transport")?),
            "--connect" => connect = Some(value("--connect")?),
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--name" => name = Some(value("--name")?),
            "--threads" => {
                let v = value("--threads")?;
                threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--heartbeat-ms" => {
                let v = value("--heartbeat-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad interval `{v}`"))?;
                heartbeat = Duration::from_millis(ms.max(1));
            }
            "--metrics" => metrics = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let endpoint = match transport.as_deref() {
        Some("tcp") => Endpoint::Tcp {
            connect: connect.ok_or("--connect is required for tcp")?,
        },
        Some("spool") => Endpoint::Spool {
            dir: dir.ok_or("--dir is required for spool")?,
        },
        Some(other) => return Err(format!("unknown transport `{other}`")),
        None => return Err("--transport is required".to_owned()),
    };
    Ok(Args {
        endpoint,
        name: name.ok_or("--name is required")?,
        threads: threads.max(1),
        heartbeat,
        metrics,
    })
}

fn main() {
    let code = match parse_args() {
        Ok(args) => match &args.endpoint {
            Endpoint::Tcp { connect } => run_tcp_worker(
                connect,
                &args.name,
                args.threads,
                args.heartbeat,
                args.metrics,
            ),
            Endpoint::Spool { dir } => {
                run_spool_worker(dir, &args.name, args.threads, args.heartbeat, args.metrics)
            }
        },
        Err(message) => {
            eprintln!("dist_worker: {message}");
            2
        }
    };
    std::process::exit(code);
}
