//! Shard worker: the child-process half of `runner::sharded`.
//!
//! Reads a shard manifest, evaluates the scenarios through the standard
//! [`Runner`](micronano::core::runner::Runner), and writes the outcome
//! file the parent merges. Usage (normally spawned by
//! `runner::sharded::run_sharded`, not by hand):
//!
//! ```sh
//! shard_worker --manifest shard-0.manifest --out shard-0.outcomes \
//!              --shard 0 [--workers 1] [--metrics shard-0.metrics]
//! ```
//!
//! Exit codes: 0 success, 2 usage/I-O/parse error, 3 injected crash.
//!
//! The `MNS_SHARD_FAULT` environment variable (set by the driver's
//! recovery tests) injects faults: `crash` evaluates half the manifest,
//! writes a truncated outcome file and exits 3; `hang` sleeps until the
//! parent's deadline kills the process.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use micronano::core::runner::manifest::{parse_manifest, write_outcomes};
use micronano::core::runner::sharded::FAULT_ENV;
use micronano::core::runner::{RunnerConfig, Scenario, ScenarioOutcome, ShardId};
use micronano::telemetry;

struct Args {
    manifest: PathBuf,
    out: PathBuf,
    shard: ShardId,
    workers: usize,
    metrics: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut manifest = None;
    let mut out = None;
    let mut shard = None;
    let mut workers = 1usize;
    let mut metrics = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--manifest" => manifest = Some(PathBuf::from(value("--manifest")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--shard" => {
                let v = value("--shard")?;
                shard = Some(ShardId(
                    v.parse().map_err(|_| format!("bad shard id `{v}`"))?,
                ));
            }
            "--workers" => {
                let v = value("--workers")?;
                workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        manifest: manifest.ok_or("--manifest is required")?,
        out: out.ok_or("--out is required")?,
        shard: shard.ok_or("--shard is required")?,
        workers,
        metrics,
    })
}

/// Runs the shard and returns the process exit code.
fn run(args: &Args) -> Result<i32, String> {
    let fault = std::env::var(FAULT_ENV).ok();
    if fault.as_deref() == Some("hang") {
        // Sleep until the parent's deadline kills us; cap at 10 minutes
        // so an orphaned worker cannot outlive a forgotten test run.
        std::thread::sleep(Duration::from_secs(600));
        return Ok(4);
    }

    let text = std::fs::read_to_string(&args.manifest)
        .map_err(|e| format!("read {}: {e}", args.manifest.display()))?;
    let (manifest_shard, entries) = parse_manifest(&text).map_err(|e| e.to_string())?;
    if manifest_shard != args.shard {
        return Err(format!(
            "manifest is for {manifest_shard}, worker launched for {}",
            args.shard
        ));
    }

    if args.metrics.is_some() {
        telemetry::enable(Arc::new(telemetry::WallClock::default()));
    }

    // An injected crash evaluates only half the manifest and truncates
    // the output — the parent must detect the short record count.
    let crash = fault.as_deref() == Some("crash");
    let keep = if crash {
        entries.len() / 2
    } else {
        entries.len()
    };
    let scenarios: Vec<Scenario> = entries[..keep].iter().map(|(_, s)| s.clone()).collect();

    let mut runner = RunnerConfig::new().workers(args.workers).build();
    let mut report = runner.run(&scenarios);
    // The worker ran an unsharded batch; restamp stats with the global
    // shard identity before they cross the process boundary.
    report.stats.shard = args.shard;
    for row in &mut report.stats.per_worker {
        row.shard = args.shard;
    }
    let pairs: Vec<(usize, ScenarioOutcome)> = entries[..keep]
        .iter()
        .map(|(i, _)| *i)
        .zip(report.outcomes)
        .collect();
    std::fs::write(&args.out, write_outcomes(&report.stats, &pairs))
        .map_err(|e| format!("write {}: {e}", args.out.display()))?;

    if let Some(path) = &args.metrics {
        telemetry::disable();
        let snap = telemetry::snapshot();
        std::fs::write(path, snap.to_wire())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(if crash { 3 } else { 0 })
}

fn main() {
    let code = match parse_args().and_then(|args| run(&args)) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("shard_worker: {message}");
            2
        }
    };
    std::process::exit(code);
}
