//! # micronano — a system-level design kit for micro/nano systems
//!
//! Umbrella crate re-exporting the micronano workspace, a Rust reproduction
//! of the systems outlined in G. De Micheli's DATE 2008 keynote *"Designing
//! Micro/Nano Systems for a Safer and Healthier Tomorrow"*.
//!
//! The workspace implements the keynote's three illustrative application
//! domains and the chip-level substrates they depend on:
//!
//! * [`fluidics`] — digital microfluidic biochip design automation
//!   (scheduling, placement, concurrent droplet routing),
//! * [`biosensor`] — label-free sensing-array models producing expression
//!   matrices,
//! * [`bicluster`] — data interpretation by exact ZDD biclustering plus the
//!   Cheng–Church baseline,
//! * [`grn`] — Boolean gene-regulatory-network modeling, attractor analysis
//!   and in-silico knock-out experiments,
//! * [`noc`] — network-on-chip topology synthesis, deadlock-free routing and
//!   flit-level simulation in 2-D and 3-D,
//! * [`wsn`] — environmental wireless sensor networks with energy harvesting
//!   and run-time management policies,
//! * [`dd`] — the shared BDD/ZDD decision-diagram package,
//! * [`dist`] — the transport-agnostic cluster scheduler for
//!   multi-machine sharded sweeps (in-process, TCP and spool-directory
//!   transports with deterministic failure recovery),
//! * [`sim`] — the deterministic discrete-event kernel,
//! * [`telemetry`] — deterministic tracing/metrics with Chrome-trace,
//!   folded-stack and metrics-snapshot exporters (off by default),
//! * [`core`] — the system-level co-design layer tying the domains together
//!   (most notably the end-to-end lab-on-chip compiler).
//!
//! ## Quickstart
//!
//! ```
//! use micronano::core::labchip::{LabChipPipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = LabChipPipeline::new(PipelineConfig::default()).run(42)?;
//! assert!(report.routing.makespan > 0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for complete domain walkthroughs and `EXPERIMENTS.md` for
//! the experiment catalogue.

#![forbid(unsafe_code)]

pub use mns_bicluster as bicluster;
pub use mns_biosensor as biosensor;
pub use mns_core as core;
pub use mns_crossbar as crossbar;
pub use mns_dd as dd;
pub use mns_dist as dist;
pub use mns_fluidics as fluidics;
pub use mns_grn as grn;
pub use mns_noc as noc;
pub use mns_policy as policy;
pub use mns_sim as sim;
pub use mns_telemetry as telemetry;
pub use mns_wsn as wsn;
