//! Property-based tests of the assay compiler on randomly generated
//! protocol DAGs: whatever the dependency structure, the compiled
//! schedule must respect it, routes must fit their windows, and the flow
//! must fail cleanly rather than panic.

use micronano::fluidics::assay::{concentrations, OpKind};
use micronano::fluidics::compiler::{compile, CompilerConfig};
use micronano::fluidics::constraints::verify_routes_exempting_merges;
use micronano::fluidics::workload::random_assay;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compiled_random_assays_are_consistent(
        seed in 0u64..50_000,
        mixes in 1usize..6,
    ) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let assay = random_assay(mixes, &mut rng);
        let cfg = CompilerConfig {
            grid_width: 20,
            grid_height: 20,
            ..CompilerConfig::default()
        };
        let Ok(compiled) = compile(&assay, &cfg) else {
            // Failing cleanly (congestion) is acceptable; panicking is not.
            return Ok(());
        };
        // Dependencies respected with the transport latency the schedule
        // was built with.
        for op in assay.operations() {
            let e = compiled.schedule.entry(op.id);
            for &p in &op.inputs {
                let pe = compiled.schedule.entry(p);
                prop_assert!(e.start >= pe.end, "{} starts before {} ends", op.id, p);
            }
        }
        // Routes arrive before their consumer starts and verify safe.
        let mut idx = 0;
        for op in assay.operations() {
            for _ in &op.inputs {
                let r = &compiled.routes[idx];
                prop_assert!(r.arrival() <= compiled.schedule.entry(op.id).start);
                idx += 1;
            }
        }
        let partners = |i: usize, j: usize| compiled.edges[i].1 == compiled.edges[j].1;
        prop_assert!(verify_routes_exempting_merges(&compiled.routes, &partners).is_empty());
        // The actuation program covers the whole schedule.
        prop_assert!(compiled.program.len() as u32 >= compiled.stats.makespan);
    }

    #[test]
    fn concentrations_are_convex_combinations(
        seed in 0u64..50_000,
        mixes in 1usize..8,
    ) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let assay = random_assay(mixes, &mut rng);
        let conc = concentrations(&assay);
        for op in assay.operations() {
            let c = conc[op.id.0 as usize];
            prop_assert!((0.0..=1.0).contains(&c));
            if matches!(op.kind, OpKind::Mix | OpKind::Dilute) {
                let a = conc[op.inputs[0].0 as usize];
                let b = conc[op.inputs[1].0 as usize];
                prop_assert!(c >= a.min(b) - 1e-12 && c <= a.max(b) + 1e-12);
            }
        }
    }
}
