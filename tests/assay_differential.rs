//! Differential properties of the assay library: whatever protocol the
//! random generators produce, the compiler must behave like a function
//! (same input → same output), its schedules must respect the physical
//! invariants, added faults must never un-break a broken instance, and
//! the scenario engine must produce identical digests at every
//! parallelism and sharding level.
//!
//! All randomness is seed-derived through the vendored deterministic
//! proptest, so the exact same cases replay in CI.

use micronano::core::runner::{
    AssayKind, FluidicsScenario, Runner, RunnerConfig, Scenario, ShardStrategy,
};
use micronano::fluidics::assay::Assay;
use micronano::fluidics::compiler::{compile_with_faults, CompilerConfig};
use micronano::fluidics::geometry::{Cell, Grid};
use micronano::fluidics::modules::ModuleLibrary;
use micronano::fluidics::place::Reservation;
use micronano::fluidics::schedule::{schedule_with_keepout, Schedule, ScheduleConfig};
use micronano::fluidics::workload::random_protocol;
use micronano::fluidics::{FaultConfig, FaultModel};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Derives an [`AssayKind`] plus a scale from one drawn seed (the
/// vendored proptest has no tuple/enum strategies, so composite values
/// come from u64s).
fn kind_from_seed(seed: u64) -> (AssayKind, usize) {
    let kind = match seed % 5 {
        0 => AssayKind::Multiplex,
        1 => AssayKind::SerialDilution,
        2 => AssayKind::Washing {
            wash_steps: (seed / 5 % 3) as usize,
        },
        3 => AssayKind::MixingTree {
            fanin: 2 + (seed / 5 % 2) as usize,
        },
        _ => AssayKind::DilutionGradient,
    };
    let n = match kind {
        // fanin^n reagents — keep the tree shallow.
        AssayKind::MixingTree { .. } => 1 + (seed / 15 % 2) as usize,
        // Washing chains grow fast (n·(6 + 4w) ops) — cap the width.
        AssayKind::Washing { .. } => 1 + (seed / 15 % 3) as usize,
        _ => 1 + (seed / 15 % 4) as usize,
    };
    (kind, n)
}

/// Rebuilds the placer reservations a schedule implies: each module is
/// held from its landing window (`reserve_from`) until release, which is
/// `end` plus the transport latency when the operation feeds a consumer
/// (the hand-off droplet still occupies the region).
fn implied_reservations(assay: &Assay, sched: &Schedule) -> Vec<Reservation> {
    let consumers = assay.consumers();
    sched
        .entries()
        .iter()
        .map(|e| Reservation {
            origin: e.origin,
            spec: e.spec,
            from: e.reserve_from,
            until: if consumers[e.op.0 as usize].is_empty() {
                e.end
            } else {
                e.end + sched.transport_latency()
            },
        })
        .collect()
}

fn random_keepout(seed: u64, grid: &Grid, count: usize) -> Vec<Cell> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Cell::new(
                rng.gen_range(0..grid.width()),
                rng.gen_range(0..grid.height()),
            )
        })
        .collect()
}

/// A deterministic shuffle of every grid cell; prefixes of this list form
/// the nested dead-cell chains of the monotone-degradation property.
fn shuffled_cells(seed: u64, grid: &Grid) -> Vec<Cell> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cells: Vec<Cell> = grid.cells().collect();
    // Fisher–Yates with the deterministic stream.
    for i in (1..cells.len()).rev() {
        let j = rng.gen_range(0..=i);
        cells.swap(i, j);
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The compiler is a function: the same random protocol and the same
    // fault map give byte-identical stats and routes, or the same error.
    #[test]
    fn compile_or_error_is_deterministic(
        seed in 0u64..100_000,
        ops in 1usize..6,
        dead_pct in 0u32..6,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let assay = random_protocol(ops, &mut rng);
        let cfg = CompilerConfig::default();
        let grid = Grid::new(cfg.grid_width, cfg.grid_height).expect("valid grid");
        let model = if dead_pct > 0 {
            FaultModel::generate(
                &FaultConfig::dead(seed, f64::from(dead_pct) / 100.0),
                &grid,
            )
        } else {
            FaultModel::none()
        };
        let a = compile_with_faults(&assay, &cfg, &model);
        let b = compile_with_faults(&assay, &cfg, &model);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
                prop_assert_eq!(a.routes, b.routes);
                prop_assert_eq!(a.program, b.program);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            _ => prop_assert!(false, "same input diverged between Ok and Err"),
        }
    }

    // Full-opset random protocols schedule under the same invariants the
    // immunoassay does: no double-booked modules, keepouts honoured,
    // dependencies separated by the transport latency, makespan exact.
    #[test]
    fn random_protocol_schedules_respect_invariants(
        seed in 0u64..100_000,
        ops in 1usize..8,
        latency in 4u32..32,
        dead in 0usize..10,
    ) {
        let grid = Grid::new(16, 16).expect("valid grid");
        let keepout = random_keepout(seed ^ 0x9e37, &grid, dead);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let assay = random_protocol(ops, &mut rng);
        let cfg = ScheduleConfig { transport_latency: latency };
        // Heavy keepouts may make the instance unschedulable; the
        // property binds whatever schedule does come out.
        let Ok(sched) =
            schedule_with_keepout(&assay, &grid, &ModuleLibrary::default(), &cfg, &keepout)
        else {
            return Ok(());
        };
        let reservations = implied_reservations(&assay, &sched);
        for (i, a) in reservations.iter().enumerate() {
            for b in &reservations[i + 1..] {
                prop_assert!(!a.conflicts(b), "double-booking: {a:?} vs {b:?}");
            }
        }
        let mut last_end = 0;
        for e in sched.entries() {
            prop_assert!(e.start < e.end);
            prop_assert!(e.reserve_from <= e.start);
            last_end = last_end.max(e.end);
            let max = Cell::new(
                e.origin.x + e.spec.width - 1,
                e.origin.y + e.spec.height - 1,
            );
            prop_assert!(grid.contains(e.origin) && grid.contains(max));
            for c in &keepout {
                let inside =
                    c.x >= e.origin.x && c.x <= max.x && c.y >= e.origin.y && c.y <= max.y;
                prop_assert!(!inside, "module covers keepout cell {c}");
            }
            for input in &assay.op(e.op).inputs {
                let producer = sched.entry(*input);
                prop_assert!(
                    e.start >= producer.end + latency,
                    "{:?} starts before {:?} ends + latency",
                    e.op,
                    input
                );
            }
        }
        prop_assert_eq!(sched.makespan(), last_end);
    }

}

/// More dead electrodes must mean fewer successful compiles. Per-case
/// success is *not* strictly monotone — the list scheduler is a
/// heuristic, and a shifted keepout can accidentally revive one instance
/// — so the property binds the aggregate over nested fault chains: for a
/// fixed pool of (assay, shuffle) cases, the number of instances that
/// still compile never increases as every chain grows by the same
/// prefix. Deterministic end to end, so the exact counts replay in CI.
#[test]
fn nested_faults_degrade_compile_success_monotonically() {
    let cfg = CompilerConfig::default();
    let grid = Grid::new(cfg.grid_width, cfg.grid_height).expect("valid grid");
    const LEVELS: [usize; 4] = [2, 8, 16, 28];
    let mut successes = [0u32; LEVELS.len()];
    for seed in 0..8u64 {
        // Small instances keep the (expensive) failing compiles quick;
        // the shapes still span every family.
        let (kind, _) = kind_from_seed(seed.wrapping_mul(7) ^ 3);
        let n = 2;
        let assay = kind.instantiate(n);
        let cells = shuffled_cells(seed, &grid);
        for (i, &level) in LEVELS.iter().enumerate() {
            let model = FaultModel::from_parts(cells[..level].to_vec(), vec![], vec![]);
            if compile_with_faults(&assay, &cfg, &model).is_ok() {
                successes[i] += 1;
            }
        }
    }
    assert!(
        successes[0] > 0,
        "a couple of dead cells must leave most assays compilable"
    );
    for (i, w) in successes.windows(2).enumerate() {
        assert!(
            w[1] <= w[0],
            "success count rose from {} to {} between {} and {} dead cells \
             ({successes:?})",
            w[0],
            w[1],
            LEVELS[i],
            LEVELS[i + 1]
        );
    }
}

/// A random batch of fluidics scenarios spanning every assay family,
/// with a duplicated tail element so dedup is exercised too.
fn random_assay_batch(seed: u64, len: usize) -> Vec<Scenario> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut batch: Vec<Scenario> = (0..len)
        .map(|_| {
            let (kind, n) = kind_from_seed(rng.gen());
            Scenario::FluidicsCompile(FluidicsScenario {
                assay: kind,
                plex: n,
                grid_side: 16,
                dead_fraction: if rng.gen_bool(0.3) {
                    rng.gen_range(0.01..0.05)
                } else {
                    0.0
                },
                fault_seed: rng.gen_range(0..100),
            })
        })
        .collect();
    if len > 1 {
        let dup = batch[rng.gen_range(0..len / 2)].clone();
        batch.push(dup);
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The headline differential: serial == 2-worker == 8-worker ==
    // in-process sharded digests over random mixed-assay batches, for
    // both shard strategies.
    #[test]
    fn assay_batches_share_digests_across_parallelism(
        seed in 0u64..100_000,
        len in 3usize..7,
    ) {
        let batch = random_assay_batch(seed, len);
        let reference = Runner::serial().run(&batch).outcomes;
        for workers in [2usize, 8] {
            let outcomes = RunnerConfig::new()
                .workers(workers)
                .cache(false)
                .build()
                .run(&batch)
                .outcomes;
            prop_assert_eq!(reference.len(), outcomes.len());
            for (i, (r, o)) in reference.iter().zip(&outcomes).enumerate() {
                prop_assert_eq!(
                    r.digest(),
                    o.digest(),
                    "scenario `{}` diverged at {} workers",
                    batch[i].label(),
                    workers
                );
            }
        }
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::ByFamily] {
            for shards in [2usize, 4] {
                let outcomes = RunnerConfig::new()
                    .shards(shards)
                    .strategy(strategy)
                    .cache(false)
                    .build()
                    .run(&batch)
                    .outcomes;
                prop_assert_eq!(reference.len(), outcomes.len());
                for (i, (r, o)) in reference.iter().zip(&outcomes).enumerate() {
                    prop_assert_eq!(
                        r.digest(),
                        o.digest(),
                        "scenario `{}` diverged at {} {:?} shards",
                        batch[i].label(),
                        shards,
                        strategy
                    );
                }
            }
        }
    }
}
