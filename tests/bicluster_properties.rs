//! Property-based tests of the interpretation stack: the ZDD miner is
//! complete (matches brute force) on arbitrary small relations, its ZDD
//! bookkeeping is always consistent, and the incremental Cheng–Church
//! engine is a faithful rewrite of the full-recompute oracle.

use micronano::bicluster::cheng_church::{
    cheng_church, mean_squared_residue, reference, ChengChurchConfig,
};
use micronano::bicluster::discretize::BinaryMatrix;
use micronano::bicluster::score::{cell_jaccard, score};
use micronano::bicluster::zdd_miner::{enumerate_maximal, MinerConfig};
use micronano::bicluster::Bicluster;
use micronano::biosensor::expression::{generate, SyntheticDatasetConfig};
use micronano::biosensor::{GroundTruthBicluster, Matrix};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A dense random matrix with `rows × cols` entries drawn uniformly from
/// `[0, span)`, derived deterministically from `seed`.
fn random_matrix(seed: u64, rows: usize, cols: usize, span: f64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(0.0..span)).collect();
    Matrix::from_rows(rows, cols, data)
}

fn brute_force(b: &BinaryMatrix, cfg: &MinerConfig) -> Vec<(Vec<usize>, Vec<usize>)> {
    let n = b.cols();
    let mut out = std::collections::BTreeSet::new();
    for mask in 1u32..(1 << n) {
        let cols: Vec<usize> = (0..n).filter(|&c| mask >> c & 1 == 1).collect();
        let rows: Vec<usize> = (0..b.rows())
            .filter(|&r| cols.iter().all(|&c| b.get(r, c)))
            .collect();
        if rows.len() < cfg.min_rows {
            continue;
        }
        let closed: Vec<usize> = (0..n)
            .filter(|&c| rows.iter().all(|&r| b.get(r, c)))
            .collect();
        if closed.len() < cfg.min_cols {
            continue;
        }
        out.insert((rows, closed));
    }
    out.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn miner_is_complete_on_random_relations(
        bits in proptest::collection::vec(any::<bool>(), 12..72),
        cols in 3usize..8,
        min_rows in 1usize..3,
        min_cols in 1usize..3,
    ) {
        let rows = (bits.len() / cols).max(1);
        let mut b = BinaryMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                b.set(r, c, bits[r * cols + c]);
            }
        }
        let cfg = MinerConfig { min_rows, min_cols, ..MinerConfig::default() };
        let mined = enumerate_maximal(&b, &cfg);
        prop_assert!(!mined.truncated);
        let got: std::collections::BTreeSet<_> = mined
            .biclusters
            .iter()
            .map(|x| (x.rows.clone(), x.cols.clone()))
            .collect();
        let want: std::collections::BTreeSet<_> = brute_force(&b, &cfg).into_iter().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(mined.family_count as usize, mined.biclusters.len());
    }

    #[test]
    fn mined_biclusters_are_full_and_maximal(
        bits in proptest::collection::vec(any::<bool>(), 20..60),
    ) {
        let cols = 5;
        let rows = bits.len() / cols;
        let mut b = BinaryMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                b.set(r, c, bits[r * cols + c]);
            }
        }
        let cfg = MinerConfig { min_rows: 1, min_cols: 1, ..MinerConfig::default() };
        let mined = enumerate_maximal(&b, &cfg);
        for x in &mined.biclusters {
            // All-ones.
            for &r in &x.rows {
                for &c in &x.cols {
                    prop_assert!(b.get(r, c));
                }
            }
            // Row-maximal: no extra row has all the columns.
            for r in 0..rows {
                if !x.rows.contains(&r) {
                    prop_assert!(!x.cols.iter().all(|&c| b.get(r, c)));
                }
            }
            // Column-maximal: no extra column covers all rows.
            for c in 0..cols {
                if !x.cols.contains(&c) {
                    prop_assert!(!x.rows.iter().all(|&r| b.get(r, c)));
                }
            }
        }
    }

    #[test]
    fn jaccard_is_a_similarity(
        r1 in proptest::collection::btree_set(0usize..12, 1..6),
        c1 in proptest::collection::btree_set(0usize..12, 1..6),
        r2 in proptest::collection::btree_set(0usize..12, 1..6),
        c2 in proptest::collection::btree_set(0usize..12, 1..6),
    ) {
        let a = Bicluster::new(r1.iter().copied().collect(), c1.iter().copied().collect());
        let b = Bicluster::new(r2.iter().copied().collect(), c2.iter().copied().collect());
        let jab = cell_jaccard(&a, &b);
        let jba = cell_jaccard(&b, &a);
        prop_assert!((jab - jba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&jab));
        prop_assert_eq!(cell_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn scores_bounded_and_perfect_on_identity(
        rows in proptest::collection::btree_set(0usize..20, 2..6),
        cols in proptest::collection::btree_set(0usize..20, 2..6),
    ) {
        let truth = vec![GroundTruthBicluster {
            rows: rows.iter().copied().collect(),
            cols: cols.iter().copied().collect(),
        }];
        let found = vec![Bicluster::new(
            rows.iter().copied().collect(),
            cols.iter().copied().collect(),
        )];
        let s = score(&truth, &found);
        prop_assert_eq!(s.f1, 1.0);
    }

    // The incremental Cheng–Church engine must walk the same trajectory
    // as the full-recompute oracle on arbitrary random matrices: same
    // biclusters per seed, and (set-identity being given) the same fresh
    // mean squared residue for every reported submatrix.
    #[test]
    fn incremental_cheng_church_matches_oracle(
        seed in 0u64..100_000,
        rows in 8usize..40,
        cols in 4usize..20,
        delta_pct in 1u32..60,
    ) {
        let m = random_matrix(seed, rows, cols, 5.0);
        let cfg = ChengChurchConfig::new()
            .delta(f64::from(delta_pct) / 20.0)
            .count(3);
        let fast = cheng_church(&m, &cfg, seed ^ 0xCC);
        let oracle = reference::cheng_church(&m, &cfg, seed ^ 0xCC);
        prop_assert_eq!(&fast, &oracle);
        for b in &fast {
            let h_fast = mean_squared_residue(&m, &b.rows, &b.cols);
            let h_oracle = mean_squared_residue(&m, &b.rows, &b.cols);
            prop_assert_eq!(h_fast, h_oracle);
        }
    }
}

/// The E3-scale pin: per-seed bicluster identity at 300×100, where the
/// multiple-deletion sweep (rows > 100) and the O(|J|)/O(|I|) single
/// deletions both fire. Uses the synthetic expression generator so the
/// instance has real implanted structure, like experiment E3.
#[test]
fn incremental_matches_oracle_at_e3_scale() {
    let data = generate(
        &SyntheticDatasetConfig {
            genes: 300,
            samples: 100,
            bicluster_count: 3,
            bicluster_rows: 30,
            bicluster_cols: 12,
            ..SyntheticDatasetConfig::default()
        },
        42,
    );
    let cfg = ChengChurchConfig::new().delta(0.125).count(3);
    for seed in [7u64, 42] {
        assert_eq!(
            cheng_church(&data.matrix, &cfg, seed),
            reference::cheng_church(&data.matrix, &cfg, seed),
            "seed {seed}"
        );
    }
}
