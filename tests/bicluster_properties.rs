//! Property-based tests of the interpretation stack: the ZDD miner is
//! complete (matches brute force) on arbitrary small relations, and its
//! ZDD bookkeeping is always consistent.

use micronano::bicluster::discretize::BinaryMatrix;
use micronano::bicluster::score::{cell_jaccard, score};
use micronano::bicluster::zdd_miner::{enumerate_maximal, MinerConfig};
use micronano::bicluster::Bicluster;
use micronano::biosensor::GroundTruthBicluster;
use proptest::prelude::*;

fn brute_force(b: &BinaryMatrix, cfg: &MinerConfig) -> Vec<(Vec<usize>, Vec<usize>)> {
    let n = b.cols();
    let mut out = std::collections::BTreeSet::new();
    for mask in 1u32..(1 << n) {
        let cols: Vec<usize> = (0..n).filter(|&c| mask >> c & 1 == 1).collect();
        let rows: Vec<usize> = (0..b.rows())
            .filter(|&r| cols.iter().all(|&c| b.get(r, c)))
            .collect();
        if rows.len() < cfg.min_rows {
            continue;
        }
        let closed: Vec<usize> = (0..n)
            .filter(|&c| rows.iter().all(|&r| b.get(r, c)))
            .collect();
        if closed.len() < cfg.min_cols {
            continue;
        }
        out.insert((rows, closed));
    }
    out.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn miner_is_complete_on_random_relations(
        bits in proptest::collection::vec(any::<bool>(), 12..72),
        cols in 3usize..8,
        min_rows in 1usize..3,
        min_cols in 1usize..3,
    ) {
        let rows = (bits.len() / cols).max(1);
        let mut b = BinaryMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                b.set(r, c, bits[r * cols + c]);
            }
        }
        let cfg = MinerConfig { min_rows, min_cols, ..MinerConfig::default() };
        let mined = enumerate_maximal(&b, &cfg);
        prop_assert!(!mined.truncated);
        let got: std::collections::BTreeSet<_> = mined
            .biclusters
            .iter()
            .map(|x| (x.rows.clone(), x.cols.clone()))
            .collect();
        let want: std::collections::BTreeSet<_> = brute_force(&b, &cfg).into_iter().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(mined.family_count as usize, mined.biclusters.len());
    }

    #[test]
    fn mined_biclusters_are_full_and_maximal(
        bits in proptest::collection::vec(any::<bool>(), 20..60),
    ) {
        let cols = 5;
        let rows = bits.len() / cols;
        let mut b = BinaryMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                b.set(r, c, bits[r * cols + c]);
            }
        }
        let cfg = MinerConfig { min_rows: 1, min_cols: 1, ..MinerConfig::default() };
        let mined = enumerate_maximal(&b, &cfg);
        for x in &mined.biclusters {
            // All-ones.
            for &r in &x.rows {
                for &c in &x.cols {
                    prop_assert!(b.get(r, c));
                }
            }
            // Row-maximal: no extra row has all the columns.
            for r in 0..rows {
                if !x.rows.contains(&r) {
                    prop_assert!(!x.cols.iter().all(|&c| b.get(r, c)));
                }
            }
            // Column-maximal: no extra column covers all rows.
            for c in 0..cols {
                if !x.cols.contains(&c) {
                    prop_assert!(!x.rows.iter().all(|&r| b.get(r, c)));
                }
            }
        }
    }

    #[test]
    fn jaccard_is_a_similarity(
        r1 in proptest::collection::btree_set(0usize..12, 1..6),
        c1 in proptest::collection::btree_set(0usize..12, 1..6),
        r2 in proptest::collection::btree_set(0usize..12, 1..6),
        c2 in proptest::collection::btree_set(0usize..12, 1..6),
    ) {
        let a = Bicluster::new(r1.iter().copied().collect(), c1.iter().copied().collect());
        let b = Bicluster::new(r2.iter().copied().collect(), c2.iter().copied().collect());
        let jab = cell_jaccard(&a, &b);
        let jba = cell_jaccard(&b, &a);
        prop_assert!((jab - jba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&jab));
        prop_assert_eq!(cell_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn scores_bounded_and_perfect_on_identity(
        rows in proptest::collection::btree_set(0usize..20, 2..6),
        cols in proptest::collection::btree_set(0usize..20, 2..6),
    ) {
        let truth = vec![GroundTruthBicluster {
            rows: rows.iter().copied().collect(),
            cols: cols.iter().copied().collect(),
        }];
        let found = vec![Bicluster::new(
            rows.iter().copied().collect(),
            cols.iter().copied().collect(),
        )];
        let s = score(&truth, &found);
        prop_assert_eq!(s.f1, 1.0);
    }
}
