//! Cluster conformance: distribution across machines must never move a
//! bit.
//!
//! Contracts, all against the golden corpus of `tests/golden/corpus.txt`
//! (seed 42):
//!
//! 1. **Transport matrix**: serial == in-process sharded == in-process
//!    cluster == TCP cluster == spool cluster, for N ∈ {1, 2, 4}
//!    workers and both shard strategies.
//! 2. **Failure recovery**: a TCP worker killed mid-shard, a TCP worker
//!    whose heartbeats stall past the liveness window, and a spool
//!    worker that commits a corrupt result file all requeue onto
//!    survivors — merged digests unchanged, `dist.requeue` nonzero.
//! 3. **Telemetry**: merged worker metric *counters* are identical
//!    across the process-backed transports (histograms carry wall-clock
//!    timings and are excluded by design).
//! 4. **Degradation**: a cluster whose fleet cannot launch still
//!    completes every shard in-process with golden digests.
//!
//! The full corpus runs once per process transport; the wider matrix
//! uses a cheap-family subset (dilution-ladder scenarios dominate debug
//! wall time) that is still asserted digest-by-digest against the
//! golden file.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Once;
use std::time::Duration;

use micronano::core::runner::{
    conformance_corpus, ClusterConfig, Runner, Scenario, ScenarioOutcome, ShardStrategy,
};
use micronano::dist::{
    Cluster, ClusterReport, DistFault, FaultMode, InProcess, SpoolTransport, TcpTransport,
    Transport,
};
use micronano::telemetry;

/// Seed of the committed corpus (must match `examples/regen_golden.rs`).
const CORPUS_SEED: u64 = 42;

/// The cluster worker binary Cargo built for this test run.
fn worker_path() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_dist_worker"))
}

fn golden_digests() -> BTreeMap<String, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/corpus.txt");
    let text = std::fs::read_to_string(path).expect("tests/golden/corpus.txt is committed");
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (label, digest) = l.rsplit_once(' ').expect("`label digest` lines");
            (label.to_owned(), digest.to_owned())
        })
        .collect()
}

/// Asserts every outcome digest matches the committed golden file for
/// its scenario — works on any corpus subset, not just the full corpus.
fn assert_golden(corpus: &[Scenario], outcomes: &[ScenarioOutcome]) {
    let golden = golden_digests();
    assert_eq!(outcomes.len(), corpus.len());
    for (scenario, outcome) in corpus.iter().zip(outcomes) {
        let label = scenario.label();
        let expected = golden
            .get(&label)
            .unwrap_or_else(|| panic!("scenario `{label}` missing from golden file"));
        assert_eq!(
            *expected,
            outcome.digest().to_string(),
            "golden drift on `{label}`"
        );
    }
}

/// Cheap corpus subset for the wide matrix and the failure tests:
/// knockout / harvest / NoC scenarios evaluate in milliseconds even in
/// debug builds, dilution ladders do not.
fn cheap_corpus() -> Vec<Scenario> {
    let corpus: Vec<Scenario> = conformance_corpus(CORPUS_SEED)
        .into_iter()
        .filter(|s| {
            matches!(
                s,
                Scenario::Knockout(_) | Scenario::Harvest(_) | Scenario::NocPoint(_)
            )
        })
        .collect();
    assert!(corpus.len() >= 8, "cheap subset unexpectedly small");
    corpus
}

/// The failure tests assert on the process-global `dist.*` counters, so
/// telemetry is switched on exactly once for the whole test binary and
/// never reset (tests run in parallel threads and share the registry —
/// deltas, not absolute values, are asserted).
fn enable_telemetry_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        telemetry::enable(std::sync::Arc::new(telemetry::WallClock::default()));
    });
}

fn counter(name: &str) -> u64 {
    telemetry::snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn run_cluster(
    transport: impl Transport + 'static,
    config: ClusterConfig,
    corpus: &[Scenario],
    fault: Option<DistFault>,
) -> ClusterReport {
    let mut cluster = Cluster::new(transport, config).with_worker_binary(worker_path());
    if let Some(fault) = fault {
        cluster = cluster.with_fault(fault);
    }
    cluster.run(corpus)
}

/// Asserts one report matches the serial reference bit for bit.
fn assert_matches_serial(corpus: &[Scenario], report: &ClusterReport, context: &str) {
    let reference = Runner::serial().run(corpus);
    assert_eq!(
        reference.outcomes, report.outcomes,
        "outcome drift: {context}"
    );
    assert_eq!(
        reference.stats.totals(),
        report.stats.totals(),
        "stats drift: {context}"
    );
    assert_golden(corpus, &report.outcomes);
}

#[test]
fn in_process_cluster_matches_serial_on_full_corpus() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let config = ClusterConfig::new().workers(2).shards(4);
    let report = Cluster::new(InProcess::new(), config).run(&corpus);
    assert_matches_serial(&corpus, &report, "in-process cluster, full corpus");
    assert_eq!(report.requeues, 0, "healthy loopback workers never requeue");
    assert!(report.recovered.is_empty());
    assert_eq!(report.shards.len(), 4);
    assert!(
        report
            .placements
            .iter()
            .all(|p| p.worker.is_some() && p.attempts == 1),
        "every shard lands on a worker in one attempt: {:?}",
        report.placements
    );
}

#[test]
fn tcp_cluster_matches_serial_on_full_corpus() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let config = ClusterConfig::new().workers(2).shards(4);
    let transport = TcpTransport::bind().expect("loopback listener");
    let report = run_cluster(transport, config, &corpus, None);
    assert_matches_serial(&corpus, &report, "tcp cluster, full corpus");
    assert_eq!(report.requeues, 0);
    assert!(report.recovered.is_empty());
}

#[test]
fn spool_cluster_matches_serial_on_full_corpus() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let config = ClusterConfig::new().workers(2).shards(4);
    let transport = SpoolTransport::ephemeral().expect("spool dir");
    let report = run_cluster(transport, config, &corpus, None);
    assert_matches_serial(&corpus, &report, "spool cluster, full corpus");
    assert_eq!(report.requeues, 0);
    assert!(report.recovered.is_empty());
}

#[test]
fn in_process_matrix_matches_serial() {
    let corpus = cheap_corpus();
    for workers in [1usize, 2, 4] {
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::ByFamily] {
            let config = ClusterConfig::new()
                .workers(workers)
                .shards(4)
                .strategy(strategy);
            let report = Cluster::new(InProcess::new(), config).run(&corpus);
            assert_matches_serial(
                &corpus,
                &report,
                &format!("in-process, {workers} workers, {strategy:?}"),
            );
        }
    }
}

#[test]
fn tcp_matrix_matches_serial() {
    let corpus = cheap_corpus();
    for workers in [1usize, 2, 4] {
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::ByFamily] {
            let config = ClusterConfig::new()
                .workers(workers)
                .shards(4)
                .strategy(strategy);
            let transport = TcpTransport::bind().expect("loopback listener");
            let report = run_cluster(transport, config, &corpus, None);
            assert_matches_serial(
                &corpus,
                &report,
                &format!("tcp, {workers} workers, {strategy:?}"),
            );
            assert_eq!(report.requeues, 0, "tcp {workers}w {strategy:?}");
        }
    }
}

#[test]
fn spool_matrix_matches_serial() {
    let corpus = cheap_corpus();
    for workers in [1usize, 2, 4] {
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::ByFamily] {
            let config = ClusterConfig::new()
                .workers(workers)
                .shards(4)
                .strategy(strategy);
            let transport = SpoolTransport::ephemeral().expect("spool dir");
            let report = run_cluster(transport, config, &corpus, None);
            assert_matches_serial(
                &corpus,
                &report,
                &format!("spool, {workers} workers, {strategy:?}"),
            );
            assert_eq!(report.requeues, 0, "spool {workers}w {strategy:?}");
        }
    }
}

#[test]
fn empty_shards_resolve_without_workers() {
    // More shards than scenarios: the overflow shards are empty and must
    // resolve locally while keeping one stats row per planned shard.
    let corpus: Vec<Scenario> = cheap_corpus().into_iter().take(4).collect();
    let config = ClusterConfig::new().workers(2).shards(8);
    let report = Cluster::new(InProcess::new(), config).run(&corpus);
    assert_matches_serial(&corpus, &report, "8 shards over 4 scenarios");
    assert_eq!(report.shards.len(), 8, "one stats row per planned shard");
}

#[test]
fn metrics_counters_identical_across_process_transports() {
    let corpus = cheap_corpus();
    let config = ClusterConfig::new()
        .workers(2)
        .shards(4)
        .collect_metrics(true);

    let tcp = run_cluster(
        TcpTransport::bind().expect("loopback listener"),
        config,
        &corpus,
        None,
    );
    let spool = run_cluster(
        SpoolTransport::ephemeral().expect("spool dir"),
        config,
        &corpus,
        None,
    );
    assert_matches_serial(&corpus, &tcp, "tcp with metrics");
    assert_matches_serial(&corpus, &spool, "spool with metrics");

    let tcp_counters = &tcp
        .metrics
        .as_ref()
        .expect("tcp metrics collected")
        .counters;
    let spool_counters = &spool
        .metrics
        .as_ref()
        .expect("spool metrics collected")
        .counters;
    assert!(
        !tcp_counters.is_empty(),
        "worker runners emit at least one counter"
    );
    assert_eq!(
        tcp_counters, spool_counters,
        "merged worker counters must not depend on the transport"
    );
}

#[test]
fn tcp_worker_killed_mid_shard_recovers_on_survivor() {
    enable_telemetry_once();
    let requeues_before = counter("dist.requeue");
    let corpus = cheap_corpus();
    let config = ClusterConfig::new().workers(2).shards(4);
    let transport = TcpTransport::bind().expect("loopback listener");
    let fault = DistFault {
        worker: 0,
        mode: FaultMode::Crash,
    };
    let report = run_cluster(transport, config, &corpus, Some(fault));
    assert_matches_serial(&corpus, &report, "tcp crash recovery");
    assert!(
        report.requeues >= 1,
        "the killed worker's shard must requeue"
    );
    assert!(report.recovered.is_empty(), "the survivor absorbs the work");
    assert!(
        counter("dist.requeue") > requeues_before,
        "dist.requeue must advance"
    );
}

#[test]
fn tcp_worker_heartbeat_stall_trips_the_liveness_window() {
    enable_telemetry_once();
    let misses_before = counter("dist.heartbeat_miss");
    let corpus = cheap_corpus();
    let config = ClusterConfig::new()
        .workers(2)
        .shards(4)
        .heartbeat_interval(Duration::from_millis(25))
        .liveness_window(Duration::from_millis(400));
    let transport = TcpTransport::bind().expect("loopback listener");
    let fault = DistFault {
        worker: 0,
        mode: FaultMode::StallHeartbeat,
    };
    let report = run_cluster(transport, config, &corpus, Some(fault));
    assert_matches_serial(&corpus, &report, "tcp heartbeat-stall recovery");
    assert!(report.heartbeat_misses >= 1, "the stall must be detected");
    assert!(report.requeues >= 1, "the stalled shard must requeue");
    assert!(
        counter("dist.heartbeat_miss") > misses_before,
        "dist.heartbeat_miss must advance"
    );
}

#[test]
fn stalled_worker_trips_the_shard_deadline_when_liveness_is_lenient() {
    // Satellite contract: the configurable RunnerConfig::shard_deadline
    // is the cluster's per-shard deadline. With a liveness window too
    // lenient to notice the stall, the deadline alone must requeue.
    let corpus = cheap_corpus();
    let config = ClusterConfig::new()
        .workers(2)
        .shards(4)
        .heartbeat_interval(Duration::from_millis(25))
        .liveness_window(Duration::from_secs(30))
        .shard_deadline(Duration::from_millis(600));
    let transport = TcpTransport::bind().expect("loopback listener");
    let fault = DistFault {
        worker: 0,
        mode: FaultMode::StallHeartbeat,
    };
    let report = run_cluster(transport, config, &corpus, Some(fault));
    assert_matches_serial(&corpus, &report, "deadline-based recovery");
    assert!(report.requeues >= 1, "the deadline must requeue the shard");
    assert_eq!(
        report.heartbeat_misses, 0,
        "a 30 s liveness window must not fire first"
    );
}

#[test]
fn spool_corrupt_result_is_requeued() {
    enable_telemetry_once();
    let requeues_before = counter("dist.requeue");
    let corpus = cheap_corpus();
    let config = ClusterConfig::new().workers(2).shards(4);
    let transport = SpoolTransport::ephemeral().expect("spool dir");
    let fault = DistFault {
        worker: 0,
        mode: FaultMode::CorruptResult,
    };
    let report = run_cluster(transport, config, &corpus, Some(fault));
    assert_matches_serial(&corpus, &report, "spool corrupt-result recovery");
    assert!(report.requeues >= 1, "the corrupt result must requeue");
    assert!(report.recovered.is_empty());
    assert!(
        counter("dist.requeue") > requeues_before,
        "dist.requeue must advance"
    );
}

#[test]
fn in_process_crash_recovers_on_survivor() {
    let corpus = cheap_corpus();
    let config = ClusterConfig::new().workers(2).shards(4);
    let fault = DistFault {
        worker: 0,
        mode: FaultMode::Crash,
    };
    let report = Cluster::new(InProcess::new(), config)
        .with_fault(fault)
        .run(&corpus);
    assert_matches_serial(&corpus, &report, "in-process crash recovery");
    assert!(report.requeues >= 1);
}

#[test]
fn unlaunchable_fleet_degrades_to_local_evaluation() {
    let corpus = cheap_corpus();
    let config = ClusterConfig::new().workers(2).shards(4);
    let transport = TcpTransport::bind().expect("loopback listener");
    let report = Cluster::new(transport, config)
        .with_worker_binary("/nonexistent/dist_worker")
        .run(&corpus);
    assert_matches_serial(&corpus, &report, "local degradation");
    assert_eq!(
        report.recovered.len(),
        4,
        "every shard is recovered in-process"
    );
    assert!(report.placements.iter().all(|p| p.worker.is_none()));
}
