//! Golden-run conformance: the scenario engine's output is pinned.
//!
//! Three contracts, in increasing strength:
//!
//! 1. **Golden**: the serial digests of `conformance_corpus(42)` match
//!    the committed `tests/golden/corpus.txt` exactly. A mismatch means a
//!    behaviour change — regenerate with `cargo run --release --example
//!    regen_golden` and commit with a `[golden-update]` marker only if
//!    the change is intentional.
//! 2. **Parallel = serial**: 1-, 2- and 8-worker runs of the corpus are
//!    byte-identical to the serial reference (outcome equality is exact,
//!    floats by bit pattern).
//! 3. **Differential (property)**: the same holds for *random* scenario
//!    batches with duplicates, for random worker counts.

use std::collections::BTreeMap;

use micronano::core::runner::{
    conformance_corpus, AssayKind, FluidicsScenario, GrnModel, HarvestScenario, KnockoutScenario,
    NocScenario, Runner, RunnerConfig, Scenario, WsnScenario,
};
use micronano::noc::graph::CommGraph;
use micronano::policy::{PolicyAssignment, PolicyExpr};
use micronano::wsn::protocol::Protocol;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seed of the committed corpus (must match `examples/regen_golden.rs`).
const CORPUS_SEED: u64 = 42;

fn golden_digests() -> BTreeMap<String, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/corpus.txt");
    let text = std::fs::read_to_string(path).expect("tests/golden/corpus.txt is committed");
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (label, digest) = l.rsplit_once(' ').expect("`label digest` lines");
            (label.to_owned(), digest.to_owned())
        })
        .collect()
}

#[test]
fn serial_run_matches_golden_corpus() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let outcomes = Runner::serial().run(&corpus).outcomes;
    let golden = golden_digests();
    assert_eq!(
        golden.len(),
        corpus.len(),
        "golden file and corpus disagree on scenario count — \
         regenerate with `cargo run --release --example regen_golden`"
    );
    for (scenario, outcome) in corpus.iter().zip(&outcomes) {
        let label = scenario.label();
        let expected = golden
            .get(&label)
            .unwrap_or_else(|| panic!("scenario `{label}` missing from golden file"));
        let actual = outcome.digest().to_string();
        assert_eq!(
            *expected, actual,
            "golden drift on `{label}`: committed {expected}, got {actual}. \
             If intentional, regenerate the corpus and commit with [golden-update]."
        );
    }
}

/// Structural coverage of the committed golden file: every scenario
/// family the engine ships appears at least twice in `corpus.txt`, and
/// every corpus label is actually pinned there. Catches a corpus edit
/// that silently drops a family from conformance coverage.
#[test]
fn golden_corpus_covers_every_family_at_least_twice() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let golden = golden_digests();
    let mut per_family: BTreeMap<&'static str, usize> = BTreeMap::new();
    for scenario in &corpus {
        let label = scenario.label();
        assert!(
            golden.contains_key(&label),
            "corpus scenario `{label}` is not pinned in tests/golden/corpus.txt — \
             regenerate with `cargo run --release --example regen_golden`"
        );
        *per_family.entry(scenario.family()).or_insert(0) += 1;
    }
    for (family, count) in &per_family {
        assert!(
            *count >= 2,
            "family `{family}` appears only {count} time(s) in the golden corpus; \
             conformance needs at least two scenarios per family"
        );
    }
    // The corpus must keep covering all six engine families.
    assert_eq!(
        per_family.len(),
        6,
        "family set drift: {:?}",
        per_family.keys().collect::<Vec<_>>()
    );
    // And the assay axis itself: at least four distinct generators reach
    // the fluidics compiler through the corpus.
    let assay_kinds: std::collections::BTreeSet<&'static str> = corpus
        .iter()
        .filter_map(|s| match s {
            Scenario::FluidicsCompile(f) => Some(match f.assay {
                AssayKind::Multiplex => "multiplex",
                AssayKind::SerialDilution => "dilution",
                AssayKind::Washing { .. } => "wash",
                AssayKind::MixingTree { .. } => "mixtree",
                AssayKind::DilutionGradient => "gradient",
            }),
            _ => None,
        })
        .collect();
    assert!(
        assay_kinds.len() >= 4,
        "fluidics corpus exercises only {assay_kinds:?}"
    );
}

#[test]
fn parallel_runs_are_byte_identical_to_serial() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let reference = Runner::serial().run(&corpus).outcomes;
    for workers in [1usize, 2, 8] {
        let parallel = RunnerConfig::new()
            .workers(workers)
            .cache(false)
            .build()
            .run(&corpus)
            .outcomes;
        assert_eq!(
            reference.len(),
            parallel.len(),
            "outcome count drift at {workers} workers"
        );
        for (i, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(
                r,
                p,
                "scenario `{}` diverged at {workers} workers",
                corpus[i].label()
            );
            assert_eq!(r.digest(), p.digest());
        }
    }
}

#[test]
fn cached_replay_is_byte_identical_to_fresh_run() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let mut runner = Runner::with_workers(4);
    let fresh = runner.run(&corpus).outcomes;
    let executed = runner.stats().executed;
    let replay = runner.run(&corpus).outcomes;
    assert_eq!(fresh, replay, "cache replay must not change outcomes");
    assert_eq!(
        runner.stats().executed,
        executed,
        "a full replay must be served entirely from the cache"
    );
    assert_eq!(runner.stats().cache_hits, corpus.len() as u64);
}

/// Draws a random (always-valid) policy expression: primitives at any
/// depth, combinators until the depth budget runs out.
fn random_policy(rng: &mut ChaCha8Rng, depth: usize) -> PolicyExpr {
    let variants = if depth >= 2 { 3 } else { 7u8 };
    match rng.gen_range(0..variants) {
        0 => PolicyExpr::Fixed(rng.gen_range(0.0..1.0)),
        1 => PolicyExpr::Greedy {
            threshold: rng.gen_range(0.1..0.5),
            duty_high: rng.gen_range(0.5..1.0),
            duty_low: rng.gen_range(0.0..0.1),
        },
        2 => PolicyExpr::EnergyNeutral {
            alpha: rng.gen_range(0.001..0.1),
        },
        3 => PolicyExpr::Forecast {
            alpha: rng.gen_range(0.01..0.5),
        },
        4 => PolicyExpr::Derate {
            inner: Box::new(random_policy(rng, depth + 1)),
            fade: rng.gen_range(0.0..0.5),
            floor: rng.gen_range(0.0..0.5),
        },
        5 => {
            let low = rng.gen_range(0.05..0.4);
            PolicyExpr::Hysteresis {
                low,
                high: rng.gen_range(low + 0.1..0.95),
                on: Box::new(random_policy(rng, depth + 1)),
                off: Box::new(random_policy(rng, depth + 1)),
            }
        }
        _ => PolicyExpr::Clamp {
            inner: Box::new(random_policy(rng, depth + 1)),
            lo: rng.gen_range(0.0..0.3),
            hi: rng.gen_range(0.5..1.0),
        },
    }
}

/// Builds a random batch of *cheap* scenarios — every family except the
/// full lab-on-chip pipeline (too slow for a proptest inner loop), with
/// deliberate duplicates so the differential test also exercises
/// within-batch dedup against the parallel path.
fn random_batch(seed: u64, len: usize) -> Vec<Scenario> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut batch: Vec<Scenario> = (0..len)
        .map(|_| match rng.gen_range(0..5u8) {
            0 => Scenario::Harvest(HarvestScenario {
                policy: random_policy(&mut rng, 0),
                days: rng.gen_range(1..4),
                cloudiness: rng.gen_range(0.0..1.0),
                seed: rng.gen_range(0..1_000),
            }),
            1 => Scenario::WsnLifetime(WsnScenario {
                nodes: rng.gen_range(10..30),
                side: rng.gen_range(60.0..150.0),
                protocol: match rng.gen_range(0..3u8) {
                    0 => Protocol::Direct,
                    1 => Protocol::tree(40.0, rng.gen()),
                    _ => Protocol::cluster(0.1, rng.gen()),
                },
                failure_rate: rng.gen_range(0.0..0.01),
                max_rounds: rng.gen_range(50..200),
                seed: rng.gen_range(0..1_000),
                policies: match rng.gen_range(0..3u8) {
                    0 => None,
                    1 => Some(PolicyAssignment::Uniform(random_policy(&mut rng, 0))),
                    _ => Some(PolicyAssignment::RoundRobin(
                        (0..rng.gen_range(1..4usize))
                            .map(|_| random_policy(&mut rng, 0))
                            .collect(),
                    )),
                },
            }),
            2 => Scenario::Knockout(KnockoutScenario {
                model: if rng.gen() {
                    GrnModel::THelper
                } else {
                    GrnModel::Arabidopsis {
                        whorl: rng.gen_range(0..4),
                    }
                },
                knockout: None,
            }),
            3 => Scenario::NocPoint(NocScenario {
                app: CommGraph::hotspot(rng.gen_range(4..12), 1.0),
                max_cluster: rng.gen_range(2..6),
                shortcuts: rng.gen_range(0..4),
            }),
            _ => Scenario::FluidicsCompile(FluidicsScenario {
                assay: AssayKind::Multiplex,
                plex: rng.gen_range(1..3),
                grid_side: 16,
                dead_fraction: rng.gen_range(0.0..0.05),
                fault_seed: rng.gen_range(0..100),
            }),
        })
        .collect();
    // Duplicate a random prefix element to the tail.
    if len > 1 {
        let dup = batch[rng.gen_range(0..len / 2)].clone();
        batch.push(dup);
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn differential_serial_vs_parallel(
        seed in 0u64..100_000,
        len in 2usize..7,
        workers in 2usize..9,
    ) {
        let batch = random_batch(seed, len);
        let serial = RunnerConfig::new()
            .workers(1)
            .cache(false)
            .build()
            .run(&batch)
            .outcomes;
        let parallel = RunnerConfig::new()
            .workers(workers)
            .cache(false)
            .build()
            .run(&batch)
            .outcomes;
        prop_assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(
                s, p,
                "batch seed {} scenario `{}` diverged at {} workers",
                seed, batch[i].label(), workers
            );
            prop_assert_eq!(s.digest(), p.digest());
        }
    }

    #[test]
    fn differential_cached_vs_uncached(
        seed in 0u64..100_000,
        len in 2usize..6,
    ) {
        let batch = random_batch(seed, len);
        let uncached = RunnerConfig::new()
            .workers(4)
            .cache(false)
            .build()
            .run(&batch)
            .outcomes;
        let mut runner = Runner::with_workers(4);
        let warm = runner.run(&batch).outcomes;
        let cached = runner.run(&batch).outcomes;
        prop_assert_eq!(&uncached, &warm);
        prop_assert_eq!(&warm, &cached);
    }
}
