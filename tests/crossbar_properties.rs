//! Property-based tests of defect-tolerant crossbar mapping.

use micronano::crossbar::array::CrossbarArray;
use micronano::crossbar::logic::LogicFunction;
use micronano::crossbar::mapping::{map_function, mapping_yield};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn successful_mappings_always_verify(
        seed in 0u64..100_000,
        defect_rate in 0.0f64..0.3,
        terms in 2usize..10,
    ) {
        let rows = terms * 2;
        let fabric = CrossbarArray::with_defects(rows, 12, defect_rate, 0.5, seed);
        let f = LogicFunction::random(12, terms, 3, seed ^ 1);
        if let Some(m) = map_function(&fabric, &f) {
            prop_assert!(m.verify(&fabric, &f));
            // Rows are distinct.
            let mut rows_used = m.row_of_term.clone();
            rows_used.sort_unstable();
            rows_used.dedup();
            prop_assert_eq!(rows_used.len(), f.terms().len());
        }
    }

    #[test]
    fn perfect_fabric_with_enough_rows_always_maps(
        seed in 0u64..100_000,
        terms in 1usize..12,
    ) {
        let fabric = CrossbarArray::perfect(terms, 12);
        let f = LogicFunction::random(12, terms, 4, seed);
        prop_assert!(map_function(&fabric, &f).is_some());
    }

    #[test]
    fn adding_rows_never_hurts(
        seed in 0u64..10_000,
        defect_rate in 0.0f64..0.25,
    ) {
        // If a function maps onto a fabric, it also maps onto the same
        // fabric extended with extra (possibly defective) rows: the old
        // matching is still valid.
        let small = CrossbarArray::with_defects(8, 10, defect_rate, 0.5, seed);
        let f = LogicFunction::random(10, 6, 3, seed ^ 2);
        if map_function(&small, &f).is_some() {
            // Rebuild a larger fabric whose first 8 rows match `small`.
            let mut big = CrossbarArray::perfect(12, 10);
            for r in 0..8 {
                for c in 0..10 {
                    if let Some(kind) = small.defect_at(r, c) {
                        big.inject(r, c, kind);
                    }
                }
            }
            prop_assert!(map_function(&big, &f).is_some());
        }
    }
}

#[test]
fn yield_monotone_in_redundancy() {
    let mut last = 0.0;
    for &redundancy in &[1.0f64, 1.5, 2.0, 3.0] {
        let y = mapping_yield(12, 8, 3, redundancy, 0.12, 300, 21);
        assert!(
            y + 0.05 >= last,
            "yield should not collapse as redundancy grows: {last} → {y}"
        );
        last = y;
    }
    assert!(last > 0.9, "3× redundancy at 12% defects should be healthy");
}
