//! Differential suite pinning the memoized hash-consed ZDD engine
//! byte-identical to the naive [`NaiveFamily`] reference model, plus
//! unique-table and memo-cache invariants the arena must uphold on
//! arbitrary operation sequences.
//!
//! The memo cache is *lossy* by design; these tests are the contract
//! that losing (or hitting) a cache entry can never change a result —
//! only how fast it is produced.

use micronano::dd::{NaiveFamily, Var, ZddManager};
use proptest::prelude::*;

const VARS: Var = 8;

/// Decodes a u64 seed into a small family over `VARS` variables: each
/// byte contributes one set whose members are the set bits of the low
/// `VARS` bits. Deterministic, covers empty sets and duplicates.
fn family_from_seed(seed: u64) -> Vec<Vec<Var>> {
    (0..8)
        .map(|i| {
            let byte = (seed >> (i * 8)) & 0xFF;
            (0..VARS).filter(|v| byte >> v & 1 == 1).collect()
        })
        .collect()
}

/// Builds both representations of the same family.
fn both(m: &mut ZddManager, seed: u64) -> (micronano::dd::Ref, NaiveFamily) {
    let sets = family_from_seed(seed);
    let slices: Vec<&[Var]> = sets.iter().map(Vec::as_slice).collect();
    let z = m.from_sets(&slices);
    let n = NaiveFamily::from_sets(&slices);
    (z, n)
}

/// Asserts the ZDD `f` and the naive family agree exactly: same count,
/// same member sets in the same (lexicographic) order.
fn assert_same(m: &ZddManager, f: micronano::dd::Ref, n: &NaiveFamily) {
    assert_eq!(m.count(f) as usize, n.count(), "cardinality");
    let mut zs = m.sets(f);
    zs.sort();
    assert_eq!(zs, n.sets(), "member sets");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_ops_match_naive(a in any::<u64>(), b in any::<u64>()) {
        let mut m = ZddManager::new(VARS);
        let (zf, nf) = both(&mut m, a);
        let (zg, ng) = both(&mut m, b);

        let u = m.union(zf, zg);
        assert_same(&m, u, &nf.union(&ng));
        let i = m.intersect(zf, zg);
        assert_same(&m, i, &nf.intersect(&ng));
        let d = m.diff(zf, zg);
        assert_same(&m, d, &nf.diff(&ng));
        let j = m.join(zf, zg);
        assert_same(&m, j, &nf.join(&ng));
        let ns = m.nonsubsets(zf, zg);
        assert_same(&m, ns, &nf.nonsubsets(&ng));
        let nsup = m.nonsupersets(zf, zg);
        assert_same(&m, nsup, &nf.nonsupersets(&ng));
        let mx = m.maximal(zf);
        assert_same(&m, mx, &nf.maximal());
        m.check_unique_table().expect("canonical after op mix");
    }

    #[test]
    fn memoized_and_uncached_results_are_identical(a in any::<u64>(), b in any::<u64>()) {
        // Same op sequence with the memo cache on and off must produce
        // the same canonical structure (observed through count + sets:
        // Refs are manager-local).
        let mut hot = ZddManager::new(VARS);
        let mut cold = ZddManager::new(VARS);
        cold.set_cache_enabled(false);

        let (hf, _) = both(&mut hot, a);
        let (hg, _) = both(&mut hot, b);
        let (cf, _) = both(&mut cold, a);
        let (cg, _) = both(&mut cold, b);

        let hu = hot.union(hf, hg);
        let cu = cold.union(cf, cg);
        prop_assert_eq!(hot.count(hu), cold.count(cu));
        prop_assert_eq!(hot.sets(hu), cold.sets(cu));

        let hj = hot.join(hf, hg);
        let cj = cold.join(cf, cg);
        prop_assert_eq!(hot.count(hj), cold.count(cj));
        prop_assert_eq!(hot.sets(hj), cold.sets(cj));

        let (_, hits) = cold.cache_stats();
        prop_assert_eq!(hits, 0, "disabled cache must never hit");
    }

    #[test]
    fn repeating_an_op_hits_the_memo_and_the_same_ref(a in any::<u64>(), b in any::<u64>()) {
        let mut m = ZddManager::new(VARS);
        let (f, _) = both(&mut m, a);
        let (g, _) = both(&mut m, b);
        let first = m.union(f, g);
        let (lk0, _) = m.cache_stats();
        let second = m.union(f, g);
        let (lk1, hits1) = m.cache_stats();
        prop_assert_eq!(first, second, "hash consing: identical Ref");
        prop_assert!(lk1 > lk0, "repeat op must consult the memo");
        prop_assert!(hits1 > 0, "repeat op must hit the memo");
    }

    #[test]
    fn unique_table_is_canonical_under_churn(seeds in proptest::collection::vec(any::<u64>(), 1..6)) {
        let mut m = ZddManager::new(VARS);
        let mut acc = m.empty();
        for &s in &seeds {
            let (z, _) = both(&mut m, s);
            acc = m.union(acc, z);
            let inter = m.intersect(acc, z);
            acc = m.diff(acc, inter);
            acc = m.union(acc, z);
        }
        m.check_unique_table().expect("no duplicate or dangling entries");
        // Count stays consistent with an explicit enumeration.
        prop_assert_eq!(m.count(acc) as usize, m.sets(acc).len());
    }

    #[test]
    fn clear_cache_never_changes_results(a in any::<u64>(), b in any::<u64>()) {
        let mut m = ZddManager::new(VARS);
        let (f, _) = both(&mut m, a);
        let (g, _) = both(&mut m, b);
        let before = m.union(f, g);
        m.clear_cache();
        let after = m.union(f, g);
        prop_assert_eq!(before, after);
        m.check_unique_table().expect("canonical after clear_cache");
    }
}

#[test]
fn miner_matches_naive_closure_model() {
    // End-to-end: every bicluster mined through the memoized engine is a
    // closed (row-maximal, column-maximal) block of the matrix, and the
    // ZDD family stores each column set exactly once.
    use micronano::bicluster::discretize::BinaryMatrix;
    use micronano::bicluster::zdd_miner::{enumerate_maximal, MinerConfig};

    let mut b = BinaryMatrix::zeros(6, 6);
    for r in 0..6 {
        for c in 0..6 {
            // Two overlapping blocks plus a diagonal of noise.
            let block1 = r < 4 && c < 4;
            let block2 = r >= 2 && c >= 2;
            b.set(r, c, block1 || block2 || r == c);
        }
    }
    let cfg = MinerConfig {
        min_rows: 1,
        min_cols: 1,
        ..MinerConfig::default()
    };
    let mined = enumerate_maximal(&b, &cfg);

    for x in &mined.biclusters {
        // Closure: the column set is exactly the columns shared by all
        // its rows, and the row set exactly the rows covering all its
        // columns — nothing can be added on either axis.
        let closed_cols: Vec<usize> = (0..6)
            .filter(|&c| x.rows.iter().all(|&r| b.get(r, c)))
            .collect();
        let closed_rows: Vec<usize> = (0..6)
            .filter(|&r| x.cols.iter().all(|&c| b.get(r, c)))
            .collect();
        assert_eq!(x.cols, closed_cols, "column-closed");
        assert_eq!(x.rows, closed_rows, "row-closed");
    }

    // Column sets of mined biclusters, as a naive family: closed sets
    // are pairwise distinct, so the family loses nothing.
    let col_sets: Vec<Vec<Var>> = mined
        .biclusters
        .iter()
        .map(|x| x.cols.iter().map(|&c| c as Var).collect())
        .collect();
    let slices: Vec<&[Var]> = col_sets.iter().map(Vec::as_slice).collect();
    let fam = NaiveFamily::from_sets(&slices);
    assert_eq!(
        fam.count(),
        mined.biclusters.len(),
        "no duplicate column sets"
    );
    assert_eq!(mined.family_count as usize, mined.biclusters.len());
}
