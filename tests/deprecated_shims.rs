//! The deprecated 0.1 entry points must remain thin, faithful delegates
//! of the consolidated `Runner::run` path until they are removed.
//!
//! This is the **only** file in the workspace allowed to silence
//! deprecation warnings (CI greps for the attribute); everything else
//! must build under `RUSTFLAGS="-D deprecated"`.

#![allow(deprecated)]

use micronano::core::explore::{explore_noc_parallel, explore_noc_with};
use micronano::core::runner::{conformance_corpus, run_scenarios, Runner, RunnerConfig};
use micronano::noc::graph::CommGraph;

/// Seed of the committed corpus (must match `examples/regen_golden.rs`).
const CORPUS_SEED: u64 = 42;

#[test]
fn run_batch_matches_run() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let old = Runner::serial().run_batch(&corpus);
    let new = Runner::serial().run(&corpus).outcomes;
    assert_eq!(old, new);
}

#[test]
fn run_batch_stats_matches_run() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let (old_outcomes, old_stats) = Runner::with_workers(2).run_batch_stats(&corpus);
    let new = RunnerConfig::new().workers(2).build().run(&corpus);
    assert_eq!(old_outcomes, new.outcomes);
    assert_eq!(old_stats.totals(), new.stats.totals());
    assert_eq!(old_stats.per_worker.len(), new.stats.per_worker.len());
}

#[test]
fn run_scenarios_matches_builder_chain() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let old = run_scenarios(&corpus, 2);
    let new = RunnerConfig::new()
        .workers(2)
        .cache(false)
        .build()
        .run(&corpus)
        .outcomes;
    assert_eq!(old, new);
}

#[test]
fn explore_noc_parallel_matches_explore_noc_with() {
    let app = CommGraph::hotspot(12, 1.0);
    let old = explore_noc_parallel(&app, &[2, 4], &[0, 2], 2);
    let new = explore_noc_with(
        &app,
        &[2, 4],
        &[0, 2],
        RunnerConfig::new().workers(2).cache(false),
    );
    assert_eq!(old, new);
}
