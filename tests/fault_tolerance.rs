//! Acceptance test for fault-tolerant recompilation: a standard array
//! with 5% dead electrodes must still compile the multiplexed immunoassay
//! for at least 90% of fault maps, without blowing up the makespan.

use micronano::fluidics::assay::multiplex_immunoassay;
use micronano::fluidics::compiler::{compile, CompilerConfig};
use micronano::fluidics::geometry::Grid;
use micronano::fluidics::{compile_with_faults, FaultConfig, FaultModel};

#[test]
fn five_percent_dead_recovers_on_ninety_percent_of_seeds() {
    let cfg = CompilerConfig::default();
    let grid = Grid::new(cfg.grid_width, cfg.grid_height).expect("valid grid");
    let assay = multiplex_immunoassay(4);
    let baseline = compile(&assay, &cfg).expect("fault-free compile").stats;

    let mut successes = 0u32;
    let mut worst_ratio = 0.0f64;
    for seed in 0..20u64 {
        let model = FaultModel::generate(&FaultConfig::dead(seed, 0.05), &grid);
        assert!(
            !model.dead_cells().is_empty(),
            "5% of a standard grid is > 0"
        );
        let Ok(compiled) = compile_with_faults(&assay, &cfg, &model) else {
            continue;
        };
        // A recovered compile avoids every dead electrode (the compiler
        // itself rejects fluidically unsafe routes).
        for route in &compiled.routes {
            assert!(
                route.path.iter().all(|c| !model.is_dead(*c)),
                "seed {seed}: route {} touches a dead electrode",
                route.id
            );
        }
        let ratio = f64::from(compiled.stats.makespan) / f64::from(baseline.makespan);
        worst_ratio = worst_ratio.max(ratio);
        assert!(
            ratio <= 2.0,
            "seed {seed}: faulty makespan {} > 2x baseline {}",
            compiled.stats.makespan,
            baseline.makespan
        );
        successes += 1;
    }
    assert!(
        successes >= 18,
        "only {successes}/20 fault maps recovered (worst makespan ratio {worst_ratio:.2})"
    );
}

#[test]
fn degraded_electrodes_slow_but_never_break_compiles() {
    let cfg = CompilerConfig::default();
    let grid = Grid::new(cfg.grid_width, cfg.grid_height).expect("valid grid");
    let assay = multiplex_immunoassay(4);
    for seed in 0..10u64 {
        let fc = FaultConfig {
            seed,
            degraded_fraction: 0.10,
            ..FaultConfig::default()
        };
        let model = FaultModel::generate(&fc, &grid);
        let compiled =
            compile_with_faults(&assay, &cfg, &model).expect("degraded-only arrays always compile");
        assert!(compiled.stats.forced_stalls <= compiled.stats.route_stalls);
        assert_eq!(compiled.stats.abandoned, 0);
    }
}
