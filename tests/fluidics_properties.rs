//! Property-based tests of droplet routing: whatever instance the
//! generator produces, concurrent routes must be fluidically safe and
//! never slower than the serial baseline by construction of the metric.

use micronano::fluidics::assay::{multiplex_immunoassay, Assay};
use micronano::fluidics::compiler::CompilerConfig;
use micronano::fluidics::constraints::verify_routes;
use micronano::fluidics::geometry::{Cell, Grid};
use micronano::fluidics::modules::ModuleLibrary;
use micronano::fluidics::place::Reservation;
use micronano::fluidics::schedule::{schedule_with_keepout, Schedule, ScheduleConfig};
use micronano::fluidics::workload::{random_routing_instance, RoutingWorkload};
use micronano::fluidics::{
    compile_with_faults, route_concurrent, route_serial, FaultConfig, FaultModel, RoutingConfig,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn concurrent_routes_are_always_safe(
        seed in 0u64..100_000,
        side in 12i32..24,
        droplets in 2usize..7,
    ) {
        let w = RoutingWorkload { grid_side: side, droplets };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let (grid, requests) = random_routing_instance(&w, &mut rng);
        let out = route_concurrent(&grid, &requests, &RoutingConfig::default())
            .expect("instance generator produces routable instances");
        let violations = verify_routes(&out.routes);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        // Makespan is bounded below by the longest Manhattan trip.
        let lower = requests
            .iter()
            .map(|r| r.start.manhattan(r.goal) as u32)
            .max()
            .expect("non-empty");
        prop_assert!(out.makespan >= lower);
    }

    #[test]
    fn concurrent_beats_or_matches_serial(
        seed in 0u64..100_000,
        droplets in 2usize..6,
    ) {
        let w = RoutingWorkload { grid_side: 16, droplets };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let (grid, requests) = random_routing_instance(&w, &mut rng);
        let cfg = RoutingConfig::default();
        let conc = route_concurrent(&grid, &requests, &cfg).expect("routable");
        let serial = route_serial(&grid, &requests, &cfg).expect("routable");
        prop_assert!(
            conc.makespan <= serial.makespan,
            "concurrent {} > serial {}",
            conc.makespan,
            serial.makespan
        );
        prop_assert!(verify_routes(&serial.routes).is_empty(), "serial routes unsafe");
    }

    #[test]
    fn routes_start_and_end_where_requested(
        seed in 0u64..100_000,
        droplets in 2usize..6,
    ) {
        let w = RoutingWorkload { grid_side: 18, droplets };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let (grid, requests) = random_routing_instance(&w, &mut rng);
        let out = route_concurrent(&grid, &requests, &RoutingConfig::default())
            .expect("routable");
        for (req, route) in requests.iter().zip(&out.routes) {
            prop_assert_eq!(*route.path.first().expect("non-empty"), req.start);
            prop_assert_eq!(*route.path.last().expect("non-empty"), req.goal);
            // Paths move at most one cell per tick.
            for w in route.path.windows(2) {
                prop_assert!(w[0].manhattan(w[1]) <= 1);
                prop_assert!(grid.contains(w[1]));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn no_route_occupies_a_dead_electrode(
        seed in 0u64..100_000,
        dead_pct in 1u32..8,
        plex in 2usize..5,
    ) {
        let cfg = CompilerConfig::default();
        let grid = Grid::new(cfg.grid_width, cfg.grid_height).expect("valid grid");
        let fc = FaultConfig::dead(seed, f64::from(dead_pct) / 100.0);
        let model = FaultModel::generate(&fc, &grid);
        // Heavily damaged arrays may legitimately be uncompilable; the
        // property binds whatever routes do come out.
        if let Ok(compiled) = compile_with_faults(&multiplex_immunoassay(plex), &cfg, &model) {
            for route in &compiled.routes {
                for cell in &route.path {
                    prop_assert!(
                        !model.is_dead(*cell),
                        "route {} occupies dead electrode {cell}",
                        route.id
                    );
                }
            }
        }
    }

    #[test]
    fn same_fault_seed_gives_identical_stats(
        seed in 0u64..100_000,
        plex in 2usize..5,
    ) {
        let cfg = CompilerConfig::default();
        let grid = Grid::new(cfg.grid_width, cfg.grid_height).expect("valid grid");
        let fc = FaultConfig {
            seed,
            dead_fraction: 0.04,
            degraded_fraction: 0.04,
            transient_count: 1,
            ..FaultConfig::default()
        };
        let assay = multiplex_immunoassay(plex);
        let a = compile_with_faults(&assay, &cfg, &FaultModel::generate(&fc, &grid));
        let b = compile_with_faults(&assay, &cfg, &FaultModel::generate(&fc, &grid));
        match (a, b) {
            (Ok(a), Ok(b)) => {
                // Byte-identical replay: stats and routes match exactly.
                prop_assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
                prop_assert_eq!(a.routes, b.routes);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            _ => prop_assert!(false, "same seed diverged between Ok and Err"),
        }
    }
}

/// Rebuilds the placer reservations a schedule implies: each module is
/// held from its landing window (`reserve_from`) until release, which is
/// `end` plus the transport latency when the operation feeds a consumer
/// (the hand-off droplet still occupies the region).
fn implied_reservations(assay: &Assay, sched: &Schedule) -> Vec<Reservation> {
    let consumers = assay.consumers();
    sched
        .entries()
        .iter()
        .map(|e| Reservation {
            origin: e.origin,
            spec: e.spec,
            from: e.reserve_from,
            until: if consumers[e.op.0 as usize].is_empty() {
                e.end
            } else {
                e.end + sched.transport_latency()
            },
        })
        .collect()
}

fn random_keepout(seed: u64, grid: &Grid, count: usize) -> Vec<Cell> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Cell::new(
                rng.gen_range(0..grid.width()),
                rng.gen_range(0..grid.height()),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The scheduler never double-books the array: no two concurrently
    // live module reservations may overlap, even through the 1-cell
    // guard band, under any transport latency and keepout set.
    #[test]
    fn schedule_never_double_books_modules(
        seed in 0u64..100_000,
        plex in 1usize..6,
        latency in 4u32..32,
        dead in 0usize..12,
    ) {
        let grid = Grid::new(16, 16).expect("valid grid");
        let keepout = random_keepout(seed, &grid, dead);
        let assay = multiplex_immunoassay(plex);
        let cfg = ScheduleConfig { transport_latency: latency };
        // Heavy keepouts may make the instance unschedulable; the
        // property binds whatever schedule does come out.
        let Ok(sched) = schedule_with_keepout(&assay, &grid, &ModuleLibrary::default(), &cfg, &keepout)
        else {
            return Ok(());
        };
        let reservations = implied_reservations(&assay, &sched);
        for (i, a) in reservations.iter().enumerate() {
            for b in &reservations[i + 1..] {
                prop_assert!(
                    !a.conflicts(b),
                    "double-booking: {a:?} and {b:?} overlap in space-time"
                );
            }
        }
    }

    // No module footprint may touch a keepout cell — that is the whole
    // point of the keepout — and every footprint stays on the array.
    #[test]
    fn schedule_respects_keepouts_and_bounds(
        seed in 0u64..100_000,
        plex in 1usize..6,
        dead in 1usize..14,
    ) {
        let grid = Grid::new(16, 16).expect("valid grid");
        let keepout = random_keepout(seed, &grid, dead);
        let assay = multiplex_immunoassay(plex);
        let Ok(sched) = schedule_with_keepout(
            &assay,
            &grid,
            &ModuleLibrary::default(),
            &ScheduleConfig::default(),
            &keepout,
        ) else {
            return Ok(());
        };
        for e in sched.entries() {
            let max = Cell::new(
                e.origin.x + e.spec.width - 1,
                e.origin.y + e.spec.height - 1,
            );
            prop_assert!(grid.contains(e.origin) && grid.contains(max));
            for c in &keepout {
                let inside = c.x >= e.origin.x && c.x <= max.x && c.y >= e.origin.y && c.y <= max.y;
                prop_assert!(
                    !inside,
                    "module for {:?} at {:?}..{max:?} covers keepout cell {c}",
                    e.op, e.origin
                );
            }
        }
    }

    // Producers finish, droplets travel, consumers start: every consumer
    // begins at least `transport_latency` after each of its producers
    // ends, and the makespan is the last end tick.
    #[test]
    fn schedule_orders_dependencies_with_latency(
        plex in 1usize..6,
        latency in 4u32..32,
    ) {
        let grid = Grid::new(16, 16).expect("valid grid");
        let assay = multiplex_immunoassay(plex);
        let cfg = ScheduleConfig { transport_latency: latency };
        let sched = schedule_with_keepout(&assay, &grid, &ModuleLibrary::default(), &cfg, &[])
            .expect("pristine 16×16 array schedules every plex in range");
        let mut last_end = 0;
        for e in sched.entries() {
            prop_assert!(e.start < e.end);
            prop_assert!(e.reserve_from <= e.start);
            last_end = last_end.max(e.end);
            for input in &assay.op(e.op).inputs {
                let producer = sched.entry(*input);
                prop_assert!(
                    e.start >= producer.end + latency,
                    "{:?} starts at {} before {:?} ends ({}) + latency {}",
                    e.op, e.start, input, producer.end, latency
                );
            }
        }
        prop_assert_eq!(sched.makespan(), last_end);
    }
}

#[test]
fn lookahead_ablation_orders_safety() {
    // lookahead 1 and 2 must always verify clean; lookahead 0 may violate
    // only the dynamic rule, never the static one.
    let w = RoutingWorkload {
        grid_side: 14,
        droplets: 5,
    };
    for seed in 0..30u64 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let (grid, requests) = random_routing_instance(&w, &mut rng);
        for lookahead in [0u32, 1, 2] {
            let cfg = RoutingConfig::new().lookahead(lookahead);
            let Ok(out) = route_concurrent(&grid, &requests, &cfg) else {
                continue;
            };
            let violations = verify_routes(&out.routes);
            if lookahead >= 1 {
                assert!(
                    violations.is_empty(),
                    "seed {seed} lookahead {lookahead}: {violations:?}"
                );
            } else {
                assert!(
                    violations.iter().all(|v| !v.static_rule),
                    "seed {seed}: static violation at lookahead 0"
                );
            }
        }
    }
}
