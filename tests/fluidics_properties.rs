//! Property-based tests of droplet routing: whatever instance the
//! generator produces, concurrent routes must be fluidically safe and
//! never slower than the serial baseline by construction of the metric.

use micronano::fluidics::assay::multiplex_immunoassay;
use micronano::fluidics::compiler::CompilerConfig;
use micronano::fluidics::constraints::verify_routes;
use micronano::fluidics::geometry::Grid;
use micronano::fluidics::workload::{random_routing_instance, RoutingWorkload};
use micronano::fluidics::{
    compile_with_faults, route_concurrent, route_serial, FaultConfig, FaultModel, RoutingConfig,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn concurrent_routes_are_always_safe(
        seed in 0u64..100_000,
        side in 12i32..24,
        droplets in 2usize..7,
    ) {
        let w = RoutingWorkload { grid_side: side, droplets };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let (grid, requests) = random_routing_instance(&w, &mut rng);
        let out = route_concurrent(&grid, &requests, &RoutingConfig::default())
            .expect("instance generator produces routable instances");
        let violations = verify_routes(&out.routes);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        // Makespan is bounded below by the longest Manhattan trip.
        let lower = requests
            .iter()
            .map(|r| r.start.manhattan(r.goal) as u32)
            .max()
            .expect("non-empty");
        prop_assert!(out.makespan >= lower);
    }

    #[test]
    fn concurrent_beats_or_matches_serial(
        seed in 0u64..100_000,
        droplets in 2usize..6,
    ) {
        let w = RoutingWorkload { grid_side: 16, droplets };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let (grid, requests) = random_routing_instance(&w, &mut rng);
        let cfg = RoutingConfig::default();
        let conc = route_concurrent(&grid, &requests, &cfg).expect("routable");
        let serial = route_serial(&grid, &requests, &cfg).expect("routable");
        prop_assert!(
            conc.makespan <= serial.makespan,
            "concurrent {} > serial {}",
            conc.makespan,
            serial.makespan
        );
        prop_assert!(verify_routes(&serial.routes).is_empty(), "serial routes unsafe");
    }

    #[test]
    fn routes_start_and_end_where_requested(
        seed in 0u64..100_000,
        droplets in 2usize..6,
    ) {
        let w = RoutingWorkload { grid_side: 18, droplets };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let (grid, requests) = random_routing_instance(&w, &mut rng);
        let out = route_concurrent(&grid, &requests, &RoutingConfig::default())
            .expect("routable");
        for (req, route) in requests.iter().zip(&out.routes) {
            prop_assert_eq!(*route.path.first().expect("non-empty"), req.start);
            prop_assert_eq!(*route.path.last().expect("non-empty"), req.goal);
            // Paths move at most one cell per tick.
            for w in route.path.windows(2) {
                prop_assert!(w[0].manhattan(w[1]) <= 1);
                prop_assert!(grid.contains(w[1]));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn no_route_occupies_a_dead_electrode(
        seed in 0u64..100_000,
        dead_pct in 1u32..8,
        plex in 2usize..5,
    ) {
        let cfg = CompilerConfig::default();
        let grid = Grid::new(cfg.grid_width, cfg.grid_height).expect("valid grid");
        let fc = FaultConfig::dead(seed, f64::from(dead_pct) / 100.0);
        let model = FaultModel::generate(&fc, &grid);
        // Heavily damaged arrays may legitimately be uncompilable; the
        // property binds whatever routes do come out.
        if let Ok(compiled) = compile_with_faults(&multiplex_immunoassay(plex), &cfg, &model) {
            for route in &compiled.routes {
                for cell in &route.path {
                    prop_assert!(
                        !model.is_dead(*cell),
                        "route {} occupies dead electrode {cell}",
                        route.id
                    );
                }
            }
        }
    }

    #[test]
    fn same_fault_seed_gives_identical_stats(
        seed in 0u64..100_000,
        plex in 2usize..5,
    ) {
        let cfg = CompilerConfig::default();
        let grid = Grid::new(cfg.grid_width, cfg.grid_height).expect("valid grid");
        let fc = FaultConfig {
            seed,
            dead_fraction: 0.04,
            degraded_fraction: 0.04,
            transient_count: 1,
            ..FaultConfig::default()
        };
        let assay = multiplex_immunoassay(plex);
        let a = compile_with_faults(&assay, &cfg, &FaultModel::generate(&fc, &grid));
        let b = compile_with_faults(&assay, &cfg, &FaultModel::generate(&fc, &grid));
        match (a, b) {
            (Ok(a), Ok(b)) => {
                // Byte-identical replay: stats and routes match exactly.
                prop_assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
                prop_assert_eq!(a.routes, b.routes);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            _ => prop_assert!(false, "same seed diverged between Ok and Err"),
        }
    }
}

#[test]
fn lookahead_ablation_orders_safety() {
    // lookahead 1 and 2 must always verify clean; lookahead 0 may violate
    // only the dynamic rule, never the static one.
    let w = RoutingWorkload {
        grid_side: 14,
        droplets: 5,
    };
    for seed in 0..30u64 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let (grid, requests) = random_routing_instance(&w, &mut rng);
        for lookahead in [0u32, 1, 2] {
            let cfg = RoutingConfig {
                lookahead,
                ..RoutingConfig::default()
            };
            let Ok(out) = route_concurrent(&grid, &requests, &cfg) else {
                continue;
            };
            let violations = verify_routes(&out.routes);
            if lookahead >= 1 {
                assert!(
                    violations.is_empty(),
                    "seed {seed} lookahead {lookahead}: {violations:?}"
                );
            } else {
                assert!(
                    violations.iter().all(|v| !v.static_rule),
                    "seed {seed}: static violation at lookahead 0"
                );
            }
        }
    }
}
