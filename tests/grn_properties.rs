//! Property-based tests on gene-network analysis: the explicit and
//! implicit (BDD) engines must agree on every random network, and the
//! continuous abstraction must be consistent with the Boolean one.

use micronano::grn::dynamics::{fixed_points, sync_attractors};
use micronano::grn::ode::{OdeConfig, OdeSystem};
use micronano::grn::random::{random_network, RandomNetworkConfig};
use micronano::grn::symbolic::SymbolicDynamics;
use micronano::grn::{Perturbation, State};
use proptest::prelude::*;
use rand::SeedableRng;

fn net_for(seed: u64, genes: usize, regulators: usize) -> micronano::grn::BooleanNetwork {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    random_network(
        &RandomNetworkConfig {
            genes,
            regulators,
            bias: 0.5,
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn symbolic_and_explicit_fixed_points_agree(
        seed in 0u64..10_000,
        genes in 3usize..10,
        regulators in 1usize..4,
    ) {
        let regulators = regulators.min(genes);
        let net = net_for(seed, genes, regulators);
        let explicit = fixed_points(&net, None).expect("small network");
        let mut sym = SymbolicDynamics::new(&net);
        let symbolic = sym.fixed_point_states();
        prop_assert_eq!(explicit, symbolic);
    }

    #[test]
    fn symbolic_attractors_match_explicit(
        seed in 0u64..10_000,
        genes in 3usize..9,
    ) {
        let net = net_for(seed, genes, 2.min(genes));
        let explicit = sync_attractors(&net, None).expect("small network");
        let mut sym = SymbolicDynamics::new(&net);
        let symbolic = sym.attractors();
        prop_assert_eq!(explicit.len(), symbolic.len());
        for (a, b) in explicit.iter().zip(&symbolic) {
            prop_assert_eq!(&a.states, &b.states);
        }
    }

    #[test]
    fn attractor_basins_partition_state_space(
        seed in 0u64..10_000,
        genes in 2usize..10,
    ) {
        let net = net_for(seed, genes, 2.min(genes));
        let attractors = sync_attractors(&net, None).expect("small network");
        let total: u64 = attractors.iter().map(|a| a.basin.expect("computed")).sum();
        prop_assert_eq!(total, 1u64 << genes);
        // Attractor states are closed under the update.
        for a in &attractors {
            for (i, &s) in a.states.iter().enumerate() {
                let next = net.sync_step(s);
                let expect = a.states[(i + 1) % a.states.len()];
                prop_assert_eq!(next, expect);
            }
        }
    }

    #[test]
    fn knockout_forces_gene_off_in_every_attractor(
        seed in 0u64..10_000,
        genes in 2usize..8,
    ) {
        let net = net_for(seed, genes, 2.min(genes));
        let target = net.genes()[0].clone();
        let ko = net
            .with_perturbation(&Perturbation::knock_out(&target))
            .expect("gene exists");
        let idx = ko.gene_index(&target).expect("gene exists");
        for a in sync_attractors(&ko, None).expect("small network") {
            // After one step from any attractor state the gene is off, and
            // attractor states are reachable from themselves.
            for &s in &a.states {
                prop_assert!(!ko.sync_step(s).get(idx));
            }
        }
    }

    #[test]
    fn boolean_fixed_points_are_ode_equilibria(
        seed in 0u64..1_000,
        genes in 2usize..6,
    ) {
        let net = net_for(seed, genes, 2.min(genes));
        let sys = OdeSystem::new(&net, OdeConfig { hill_n: 12.0, ..OdeConfig::default() });
        for fp in fixed_points(&net, None).expect("small network") {
            let x = sys.embed(fp);
            let d = sys.derivative(&x);
            for v in d {
                prop_assert!(v.abs() < 0.05, "|dx/dt| = {} at Boolean fixed point", v.abs());
            }
        }
    }
}

#[test]
fn reachability_is_monotone_under_union() {
    // Reach(A ∪ B) = Reach(A) ∪ Reach(B) for deterministic dynamics.
    let net = net_for(77, 6, 2);
    let mut sym = SymbolicDynamics::new(&net);
    let a = sym.state_to_bdd(State::from_bits(0b000001));
    let b = sym.state_to_bdd(State::from_bits(0b110000));
    let (ra, _) = sym.reachable(a);
    let (rb, _) = sym.reachable(b);
    let mut states_union: Vec<State> = sym.states_of(ra);
    states_union.extend(sym.states_of(rb));
    states_union.sort_unstable();
    states_union.dedup();

    // Reach of the union.
    let mut sym2 = SymbolicDynamics::new(&net);
    let a2 = sym2.state_to_bdd(State::from_bits(0b000001));
    let b2 = sym2.state_to_bdd(State::from_bits(0b110000));
    let ab = {
        let m = sym2.manager();
        let _ = m;
        // Union via a fresh reachable call on each then merge in state
        // space (managers do not expose `or` here; compare state sets).
        let (rab_a, _) = sym2.reachable(a2);
        let (rab_b, _) = sym2.reachable(b2);
        let mut s: Vec<State> = sym2.states_of(rab_a);
        s.extend(sym2.states_of(rab_b));
        s.sort_unstable();
        s.dedup();
        s
    };
    assert_eq!(states_union, ab);
}
