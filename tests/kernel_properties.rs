//! Property-based tests of the shared kernels: the event engine's
//! ordering guarantees, the statistics accumulators, and the decision
//! diagram managers' algebraic laws.

use micronano::dd::{BddManager, Ref, ZddManager};
use micronano::sim::stats::Summary;
use micronano::sim::{Engine, Model, Scheduler, SimTime};
use proptest::prelude::*;

struct Recorder {
    seen: Vec<(u64, u32)>,
}

impl Model for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
        self.seen.push((now.ticks(), ev));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_dispatches_in_time_then_fifo_order(
        times in proptest::collection::vec(0u64..50, 1..40),
    ) {
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimTime::from_ticks(t), i as u32);
        }
        let mut model = Recorder { seen: Vec::new() };
        engine.run(&mut model);
        prop_assert_eq!(model.seen.len(), times.len());
        for w in model.seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among simultaneous events");
            }
        }
    }

    #[test]
    fn summary_merge_is_order_independent(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
        split in 0usize..50,
    ) {
        let split = split.min(xs.len());
        let mut whole = Summary::new();
        for &x in &xs { whole.record(x); }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), whole.count());
        prop_assert!((ab.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - whole.variance()).abs() < 1e-3);
    }

    #[test]
    fn bdd_boolean_laws(
        truth_a in 0u64..256,
        truth_b in 0u64..256,
    ) {
        // Build two arbitrary 3-variable functions from truth tables and
        // check algebraic laws structurally (canonicity ⇒ equal refs).
        let mut m = BddManager::new(3);
        let build = |m: &mut BddManager, tt: u64| -> Ref {
            let mut f = m.zero();
            for row in 0..8u64 {
                if tt >> row & 1 == 1 {
                    let mut term = m.one();
                    for v in 0..3u32 {
                        let lit = if row >> v & 1 == 1 { m.var(v) } else { m.nvar(v) };
                        term = m.and(term, lit);
                    }
                    f = m.or(f, term);
                }
            }
            f
        };
        let a = build(&mut m, truth_a);
        let b = build(&mut m, truth_b);
        // De Morgan.
        let and_ab = m.and(a, b);
        let l = m.not(and_ab);
        let na = m.not(a);
        let nb = m.not(b);
        let r = m.or(na, nb);
        prop_assert_eq!(l, r);
        // Absorption: a ∨ (a ∧ b) = a.
        let ab = m.and(a, b);
        prop_assert_eq!(m.or(a, ab), a);
        // Double negation.
        let nna = { let n = m.not(a); m.not(n) };
        prop_assert_eq!(nna, a);
        // Sat count agrees with the truth table.
        prop_assert_eq!(m.sat_count(a), truth_a.count_ones() as f64);
    }

    #[test]
    fn bdd_gc_preserves_protected_semantics(
        seed_fns in proptest::collection::vec(0u64..256, 2..6),
    ) {
        // Build several functions, protect half, GC, and check the
        // protected ones still evaluate exactly as before.
        let mut m = BddManager::new(3);
        let build = |m: &mut BddManager, tt: u64| -> Ref {
            let mut f = m.zero();
            for row in 0..8u64 {
                if tt >> row & 1 == 1 {
                    let mut term = m.one();
                    for v in 0..3u32 {
                        let lit = if row >> v & 1 == 1 { m.var(v) } else { m.nvar(v) };
                        term = m.and(term, lit);
                    }
                    f = m.or(f, term);
                }
            }
            f
        };
        let fns: Vec<(u64, Ref)> = seed_fns.iter().map(|&tt| (tt, build(&mut m, tt))).collect();
        let protected: Vec<(u64, Ref)> = fns.iter().step_by(2).copied().collect();
        for &(_, f) in &protected {
            m.protect(f);
        }
        let _ = m.gc();
        for &(tt, f) in &protected {
            for row in 0..8u64 {
                let assignment: Vec<bool> = (0..3).map(|v| row >> v & 1 == 1).collect();
                prop_assert_eq!(m.eval(f, &assignment), tt >> row & 1 == 1);
            }
        }
        // The manager keeps working after GC.
        let a = m.var(0);
        let b = m.var(1);
        let fresh = m.and(a, b);
        prop_assert_eq!(m.sat_count(fresh), 2.0);
        for &(_, f) in &protected {
            m.unprotect(f);
        }
    }

    #[test]
    fn zdd_family_laws(
        fam_a in proptest::collection::btree_set(0u32..32, 0..8),
        fam_b in proptest::collection::btree_set(0u32..32, 0..8),
    ) {
        // Interpret each u32 as a subset of a 5-element universe.
        let mut m = ZddManager::new(5);
        let build = |m: &mut ZddManager, fam: &std::collections::BTreeSet<u32>| -> Ref {
            let sets: Vec<Vec<u32>> = fam
                .iter()
                .map(|&mask| (0..5).filter(|&e| mask >> e & 1 == 1).collect())
                .collect();
            let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            m.from_sets(&refs)
        };
        let a = build(&mut m, &fam_a);
        let b = build(&mut m, &fam_b);
        // |A| + |B| = |A ∪ B| + |A ∩ B|.
        let u = m.union(a, b);
        let i = m.intersect(a, b);
        prop_assert_eq!(m.count(a) + m.count(b), m.count(u) + m.count(i));
        // A \ B = A \ (A ∩ B).
        let d1 = m.diff(a, b);
        let d2 = m.diff(a, i);
        prop_assert_eq!(d1, d2);
        // Union is commutative and idempotent (canonical refs).
        prop_assert_eq!(m.union(a, b), m.union(b, a));
        prop_assert_eq!(m.union(a, a), a);
        // maximal(maximal(F)) = maximal(F).
        let mx = m.maximal(a);
        prop_assert_eq!(m.maximal(mx), mx);
    }
}
