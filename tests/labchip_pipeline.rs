//! Integration tests of the end-to-end lab-on-chip pipeline across the
//! fluidics → biosensor → bicluster crate boundary.

use micronano::core::labchip::{LabChipPipeline, PipelineConfig};

#[test]
fn pipeline_recovers_truth_across_seeds() {
    let pipeline = LabChipPipeline::new(PipelineConfig::default());
    for seed in [1u64, 7, 42, 1234] {
        let report = pipeline.run(seed).expect("pipeline runs");
        assert!(
            report.interpretation.recovery > 0.6,
            "seed {seed}: recovery {}",
            report.interpretation.recovery
        );
        assert!((0.0..=1.0).contains(&report.interpretation.recovery));
        assert!((0.0..=1.0).contains(&report.interpretation.relevance));
        assert!((0.0..=1.0).contains(&report.interpretation.f1));
        assert!(report.routing.makespan > 0);
        assert_eq!(
            report.mining.family_count as usize,
            report.mining.biclusters.len(),
            "ZDD family must agree with the enumeration"
        );
    }
}

#[test]
fn near_ideal_sensor_gives_near_perfect_interpretation() {
    let mut cfg = PipelineConfig::default();
    cfg.sensor.read_noise = 1e-6;
    cfg.sensor.shot_coeff = 0.0;
    cfg.sensor.adc_bits = 20;
    cfg.sensor.integration_time = 1e6;
    let report = LabChipPipeline::new(cfg).run(3).expect("pipeline runs");
    assert!(
        report.sensing_error < 0.2,
        "sensing error {}",
        report.sensing_error
    );
    assert!(
        report.interpretation.recovery > 0.9,
        "recovery {}",
        report.interpretation.recovery
    );
}

#[test]
fn bigger_panels_compile_on_bigger_chips() {
    let mut cfg = PipelineConfig {
        samples_per_run: 6,
        ..PipelineConfig::default()
    };
    cfg.chip.grid_width = 24;
    cfg.chip.grid_height = 24;
    let report = LabChipPipeline::new(cfg).run(11).expect("pipeline runs");
    assert!(report.routing.makespan > 0);
}

#[test]
fn sensing_error_scales_with_noise_knobs() {
    let base = PipelineConfig::default();
    let mut noisy = PipelineConfig::default();
    noisy.sensor.read_noise = 0.1;
    noisy.sensor.sites_per_probe = 1;
    let clean_err = LabChipPipeline::new(base).run(2).unwrap().sensing_error;
    let noisy_err = LabChipPipeline::new(noisy).run(2).unwrap().sensing_error;
    assert!(noisy_err > clean_err);
}
