//! Fuzz-style hardening of the manifest wire format.
//!
//! The cluster scheduler feeds worker-supplied bytes straight into
//! `parse_manifest` / `parse_outcomes`, so a corrupt spool file or a
//! torn TCP frame must never be able to panic the process — parsing is
//! **total**: every input either decodes or returns an error.
//!
//! Strategy (vendored proptest has no tuple strategies, so each case
//! draws one `u64` seed and expands it with ChaCha8): take a valid
//! manifest and a valid outcome file, apply random byte mutations —
//! overwrites, truncations, splices — and parse the lossy-UTF-8 result.
//! A separate case parses pure random bytes. The unmutated texts must
//! keep round-tripping, pinning that the hardening did not reject valid
//! input.

use std::sync::OnceLock;

use micronano::core::runner::manifest::{
    decode_outcome, decode_scenario, encode_scenario, parse_manifest, parse_outcomes,
    write_manifest, write_outcomes,
};
use micronano::core::runner::{
    conformance_corpus, HarvestScenario, Runner, Scenario, ScenarioOutcome, ShardId, WsnScenario,
};
use micronano::policy::{PolicyAssignment, PolicyExpr};
use micronano::wsn::protocol::Protocol;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A valid manifest over the full corpus (cheap: no evaluation).
fn base_manifest() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let corpus = conformance_corpus(42);
        let entries: Vec<(usize, &Scenario)> = corpus.iter().enumerate().collect();
        write_manifest(ShardId(3), &entries)
    })
}

/// A valid outcome file over a cheap corpus subset (evaluated once).
fn base_outcomes() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let corpus: Vec<Scenario> = conformance_corpus(42)
            .into_iter()
            .filter(|s| matches!(s, Scenario::Knockout(_) | Scenario::Harvest(_)))
            .take(6)
            .collect();
        let mut report = Runner::serial().run(&corpus);
        report.stats.shard = ShardId(3);
        let pairs: Vec<(usize, ScenarioOutcome)> = (0..corpus.len()).zip(report.outcomes).collect();
        write_outcomes(&report.stats, &pairs)
    })
}

/// Random (always-valid) policy expression — primitives at any depth,
/// combinators until the depth budget runs out. Mirrors the generator in
/// `tests/conformance.rs` so the fuzzed records cover every wire token.
fn random_policy(rng: &mut ChaCha8Rng, depth: usize) -> PolicyExpr {
    let variants = if depth >= 2 { 3 } else { 8u8 };
    match rng.gen_range(0..variants) {
        0 => PolicyExpr::Fixed(rng.gen_range(0.0..1.0)),
        1 => PolicyExpr::Greedy {
            threshold: rng.gen_range(0.1..0.5),
            duty_high: rng.gen_range(0.5..1.0),
            duty_low: rng.gen_range(0.0..0.1),
        },
        2 => PolicyExpr::EnergyNeutral {
            alpha: rng.gen_range(0.001..0.1),
        },
        3 => PolicyExpr::Forecast {
            alpha: rng.gen_range(0.01..0.5),
        },
        4 => PolicyExpr::Derate {
            inner: Box::new(random_policy(rng, depth + 1)),
            fade: rng.gen_range(0.0..0.5),
            floor: rng.gen_range(0.0..0.5),
        },
        5 => {
            let low = rng.gen_range(0.05..0.4);
            PolicyExpr::Hysteresis {
                low,
                high: rng.gen_range(low + 0.1..0.95),
                on: Box::new(random_policy(rng, depth + 1)),
                off: Box::new(random_policy(rng, depth + 1)),
            }
        }
        6 => {
            let mut start = 0u64;
            let pieces = (0..rng.gen_range(1..4usize))
                .map(|k| {
                    if k > 0 {
                        start += rng.gen_range(1..10u64);
                    }
                    (start, random_policy(rng, depth + 1))
                })
                .collect();
            PolicyExpr::Scheduled { pieces }
        }
        _ => PolicyExpr::Clamp {
            inner: Box::new(random_policy(rng, depth + 1)),
            lo: rng.gen_range(0.0..0.3),
            hi: rng.gen_range(0.5..1.0),
        },
    }
}

/// A policy-heavy scenario record: either a harvest run under a deep
/// composite expression or a lifetime run with a per-node assignment.
fn random_policy_record(rng: &mut ChaCha8Rng) -> String {
    let scenario = if rng.gen() {
        Scenario::Harvest(HarvestScenario {
            policy: random_policy(rng, 0),
            days: rng.gen_range(1..5),
            cloudiness: rng.gen_range(0.0..1.0),
            seed: rng.gen_range(0..1_000),
        })
    } else {
        Scenario::WsnLifetime(WsnScenario {
            nodes: rng.gen_range(10..40),
            side: rng.gen_range(60.0..200.0),
            protocol: Protocol::cluster(0.1, true),
            failure_rate: rng.gen_range(0.0..0.01),
            max_rounds: rng.gen_range(50..300),
            seed: rng.gen_range(0..1_000),
            policies: match rng.gen_range(0..3u8) {
                0 => None,
                1 => Some(PolicyAssignment::Uniform(random_policy(rng, 0))),
                _ => Some(PolicyAssignment::RoundRobin(
                    (0..rng.gen_range(1..5usize))
                        .map(|_| random_policy(rng, 0))
                        .collect(),
                )),
            },
        })
    };
    encode_scenario(&scenario)
}

/// Applies `count` random mutations — overwrite, truncate or splice —
/// and returns the result as lossy UTF-8.
fn mutate(text: &str, rng: &mut ChaCha8Rng, count: usize) -> String {
    let mut bytes = text.as_bytes().to_vec();
    for _ in 0..count {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_range(0..4u8) {
            0 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen::<u8>();
            }
            1 => {
                let at = rng.gen_range(0..bytes.len());
                bytes.truncate(at);
            }
            2 => {
                let at = rng.gen_range(0..=bytes.len());
                let extra: Vec<u8> = (0..rng.gen_range(1..16usize))
                    .map(|_| rng.gen::<u8>())
                    .collect();
                bytes.splice(at..at, extra);
            }
            _ => {
                let at = rng.gen_range(0..bytes.len());
                bytes.remove(at);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Feeds one text to every parser in the wire format; only the return
/// values matter — nothing here may panic.
fn parse_everything(text: &str) {
    let _ = parse_manifest(text);
    let _ = parse_outcomes(text);
    for line in text.lines().take(64) {
        let _ = decode_scenario(line);
        let _ = decode_outcome(line);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn mutated_manifests_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let count = rng.gen_range(1..24usize);
        parse_everything(&mutate(base_manifest(), &mut rng, count));
    }

    #[test]
    fn mutated_outcome_files_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let count = rng.gen_range(1..24usize);
        parse_everything(&mutate(base_outcomes(), &mut rng, count));
    }

    #[test]
    fn random_bytes_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let len = rng.gen_range(0..512usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        parse_everything(&String::from_utf8_lossy(&bytes));
    }

    // Policy-expression tokens survive arbitrary byte mutations: the
    // decoder either returns an error or a *validated* scenario — it
    // must never panic and never accept a policy that fails validation.
    #[test]
    fn mutated_policy_records_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let record = random_policy_record(&mut rng);
        let count = rng.gen_range(1..16usize);
        let mutated = mutate(&record, &mut rng, count);
        if let Ok(scenario) = decode_scenario(&mutated) {
            match &scenario {
                Scenario::Harvest(h) => assert!(h.policy.validate().is_ok()),
                Scenario::WsnLifetime(w) => {
                    if let Some(a) = &w.policies {
                        assert!(a.validate().is_ok());
                    }
                }
                _ => {}
            }
        }
        parse_everything(&mutated);
    }

    // Garbage spliced specifically into the policy-token tail of a
    // record (the part after the scenario discriminant) never panics.
    #[test]
    fn garbage_policy_tails_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let record = random_policy_record(&mut rng);
        let mut cut = rng.gen_range(0..=record.len());
        while !record.is_char_boundary(cut) {
            cut -= 1;
        }
        let tail_len = rng.gen_range(0..24usize);
        let tokens = ["fixed", "greedy", "neutral", "forecast", "derate", "hyst",
                      "sched", "clamp", "policies", "uniform", "mix", "nan", "inf",
                      "-1", "0.5", "1e308", "99999999999999999999", ""];
        let mut garbled = record[..cut].to_owned();
        for _ in 0..tail_len {
            garbled.push(' ');
            garbled.push_str(tokens[rng.gen_range(0..tokens.len())]);
        }
        let _ = decode_scenario(&garbled);
        parse_everything(&garbled);
    }

    // Unmutated policy records round-trip byte-identically: decode then
    // re-encode reproduces the exact wire bytes.
    #[test]
    fn policy_records_round_trip_byte_identically(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let record = random_policy_record(&mut rng);
        let decoded = decode_scenario(&record).expect("valid record decodes");
        prop_assert_eq!(
            encode_scenario(&decoded),
            record,
            "re-encoding drifted from the original wire bytes"
        );
    }
}

#[test]
fn unmutated_bases_still_round_trip() {
    let (shard, entries) = parse_manifest(base_manifest()).expect("valid manifest parses");
    assert_eq!(shard, ShardId(3));
    assert_eq!(entries.len(), conformance_corpus(42).len());
    let (stats, outcomes) = parse_outcomes(base_outcomes()).expect("valid outcomes parse");
    assert_eq!(stats.shard, ShardId(3));
    assert_eq!(outcomes.len(), 6);
}
