//! Fuzz-style hardening of the manifest wire format.
//!
//! The cluster scheduler feeds worker-supplied bytes straight into
//! `parse_manifest` / `parse_outcomes`, so a corrupt spool file or a
//! torn TCP frame must never be able to panic the process — parsing is
//! **total**: every input either decodes or returns an error.
//!
//! Strategy (vendored proptest has no tuple strategies, so each case
//! draws one `u64` seed and expands it with ChaCha8): take a valid
//! manifest and a valid outcome file, apply random byte mutations —
//! overwrites, truncations, splices — and parse the lossy-UTF-8 result.
//! A separate case parses pure random bytes. The unmutated texts must
//! keep round-tripping, pinning that the hardening did not reject valid
//! input.

use std::sync::OnceLock;

use micronano::core::runner::manifest::{
    decode_outcome, decode_scenario, parse_manifest, parse_outcomes, write_manifest, write_outcomes,
};
use micronano::core::runner::{conformance_corpus, Runner, Scenario, ScenarioOutcome, ShardId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A valid manifest over the full corpus (cheap: no evaluation).
fn base_manifest() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let corpus = conformance_corpus(42);
        let entries: Vec<(usize, &Scenario)> = corpus.iter().enumerate().collect();
        write_manifest(ShardId(3), &entries)
    })
}

/// A valid outcome file over a cheap corpus subset (evaluated once).
fn base_outcomes() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let corpus: Vec<Scenario> = conformance_corpus(42)
            .into_iter()
            .filter(|s| matches!(s, Scenario::Knockout(_) | Scenario::Harvest(_)))
            .take(6)
            .collect();
        let mut report = Runner::serial().run(&corpus);
        report.stats.shard = ShardId(3);
        let pairs: Vec<(usize, ScenarioOutcome)> = (0..corpus.len()).zip(report.outcomes).collect();
        write_outcomes(&report.stats, &pairs)
    })
}

/// Applies `count` random mutations — overwrite, truncate or splice —
/// and returns the result as lossy UTF-8.
fn mutate(text: &str, rng: &mut ChaCha8Rng, count: usize) -> String {
    let mut bytes = text.as_bytes().to_vec();
    for _ in 0..count {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_range(0..4u8) {
            0 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen::<u8>();
            }
            1 => {
                let at = rng.gen_range(0..bytes.len());
                bytes.truncate(at);
            }
            2 => {
                let at = rng.gen_range(0..=bytes.len());
                let extra: Vec<u8> = (0..rng.gen_range(1..16usize))
                    .map(|_| rng.gen::<u8>())
                    .collect();
                bytes.splice(at..at, extra);
            }
            _ => {
                let at = rng.gen_range(0..bytes.len());
                bytes.remove(at);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Feeds one text to every parser in the wire format; only the return
/// values matter — nothing here may panic.
fn parse_everything(text: &str) {
    let _ = parse_manifest(text);
    let _ = parse_outcomes(text);
    for line in text.lines().take(64) {
        let _ = decode_scenario(line);
        let _ = decode_outcome(line);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn mutated_manifests_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let count = rng.gen_range(1..24usize);
        parse_everything(&mutate(base_manifest(), &mut rng, count));
    }

    #[test]
    fn mutated_outcome_files_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let count = rng.gen_range(1..24usize);
        parse_everything(&mutate(base_outcomes(), &mut rng, count));
    }

    #[test]
    fn random_bytes_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let len = rng.gen_range(0..512usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        parse_everything(&String::from_utf8_lossy(&bytes));
    }
}

#[test]
fn unmutated_bases_still_round_trip() {
    let (shard, entries) = parse_manifest(base_manifest()).expect("valid manifest parses");
    assert_eq!(shard, ShardId(3));
    assert_eq!(entries.len(), conformance_corpus(42).len());
    let (stats, outcomes) = parse_outcomes(base_outcomes()).expect("valid outcomes parse");
    assert_eq!(stats.shard, ShardId(3));
    assert_eq!(outcomes.len(), 6);
}
