//! Property-based tests of the NoC flow: synthesis always yields a
//! connected, degree-bounded fabric; routing is always certified
//! deadlock-free; simulation conserves packets.

use micronano::noc::graph::CommGraph;
use micronano::noc::power::PowerModel;
use micronano::noc::routing::compute_routes;
use micronano::noc::sim::{simulate, SimConfig};
use micronano::noc::synthesis::{synthesize, Strategy, SynthesisConfig};
use micronano::noc::topology::Topology;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_yields_connected_certified_fabrics(
        seed in 0u64..100_000,
        cores in 4usize..28,
        density in 0.05f64..0.5,
        max_cluster in 2usize..6,
    ) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let app = CommGraph::random(cores, density, 1.0, &mut rng);
        for strategy in [Strategy::MinCut, Strategy::GreedyMerge] {
            let topo = synthesize(
                &app,
                &SynthesisConfig { max_cluster, strategy, ..SynthesisConfig::default() },
            );
            prop_assert!(topo.is_connected());
            prop_assert_eq!(topo.attachment().len(), cores);
            let routes = compute_routes(&topo, &app).expect("routable");
            prop_assert!(routes.deadlock_free, "{strategy:?} produced a cyclic CDG");
            // Routes are valid walks covering the endpoints.
            for (f, p) in app.flows().iter().zip(&routes.paths) {
                prop_assert_eq!(p[0], topo.router_of(f.src));
                prop_assert_eq!(*p.last().expect("non-empty"), topo.router_of(f.dst));
            }
        }
    }

    #[test]
    fn mesh_routes_are_minimal(
        w in 2usize..6,
        h in 2usize..6,
    ) {
        let topo = Topology::mesh2d(w, h);
        let app = CommGraph::uniform(w * h, 1.0);
        let routes = compute_routes(&topo, &app).expect("mesh routes");
        prop_assert!(routes.deadlock_free);
        for (f, p) in app.flows().iter().zip(&routes.paths) {
            let d = topo
                .hop_distance(topo.router_of(f.src), topo.router_of(f.dst))
                .expect("connected");
            prop_assert_eq!(p.len() - 1, d);
        }
    }

    #[test]
    fn energy_proxy_is_positive_and_additive(
        seed in 0u64..100_000,
        cores in 4usize..16,
    ) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let app = CommGraph::random(cores, 0.3, 1.0, &mut rng);
        let topo = synthesize(&app, &SynthesisConfig::default());
        let routes = compute_routes(&topo, &app).expect("routable");
        let pm = PowerModel::default();
        let total = pm.traffic_energy(&topo, &app, &routes.paths);
        prop_assert!(total > 0.0);
        // Longer paths cost strictly more.
        for p in &routes.paths {
            if p.len() >= 2 {
                let full = pm.path_energy(&topo, p);
                let prefix = pm.path_energy(&topo, &p[..p.len() - 1]);
                prop_assert!(full > prefix);
            }
        }
    }
}

#[test]
fn simulation_conserves_packets_below_saturation() {
    let topo = Topology::mesh2d(4, 4);
    let app = CommGraph::uniform(16, 1.0);
    let routes = compute_routes(&topo, &app).expect("routable");
    let cfg = SimConfig {
        measure: 20_000,
        ..SimConfig::default()
    };
    let stats = simulate(&topo, &app, &routes, 0.0003, &cfg);
    assert!(stats.delivered <= stats.offered);
    assert!(
        stats.delivered as f64 >= stats.offered as f64 * 0.98,
        "delivered {} of {}",
        stats.delivered,
        stats.offered
    );
    assert!(!stats.saturated);
}

#[test]
fn synthesized_beats_mesh_on_hotspot_weighted_hops() {
    // The E7 headline claim as a regression test.
    for cores in [9usize, 16, 25] {
        let app = CommGraph::hotspot(cores, 1.0);
        let side = (cores as f64).sqrt() as usize;
        let mesh = Topology::mesh2d(side, side);
        let custom = synthesize(&app, &SynthesisConfig::default());
        let mesh_routes = compute_routes(&mesh, &app).expect("mesh");
        let custom_routes = compute_routes(&custom, &app).expect("custom");
        assert!(
            custom_routes.weighted_hops <= mesh_routes.weighted_hops,
            "{cores} cores: custom {} mesh {}",
            custom_routes.weighted_hops,
            mesh_routes.weighted_hops
        );
    }
}
