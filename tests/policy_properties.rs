//! Property tests for the composable energy-policy engine (`mns-policy`).
//!
//! Four contracts:
//!
//! 1. **Differential**: for the three primitive policies, the composable
//!    engine (`simulate_policy`) is byte-identical to the retained
//!    reference loop (`simulate_harvesting` over `DutyPolicy`) on random
//!    harvesting configurations — floats compared by bit pattern.
//! 2. **Monotonicity**: greedy duty is non-decreasing in battery level,
//!    and a hysteresis composite never raises its duty on a falling
//!    battery trace (nor lowers it on a rising one).
//! 3. **Energy conservation**: with battery-health derating engaged,
//!    initial charge + harvest = final charge + overflow + discharge.
//! 4. **Engine determinism**: random mixed-policy batches produce
//!    byte-identical digests serially, at 2 and 8 workers, and sharded.

use micronano::core::runner::{HarvestScenario, RunnerConfig, Scenario, WsnScenario};
use micronano::policy::{Policy, PolicyAssignment, PolicyExpr, SlotCtx};
use micronano::wsn::harvest::{
    simulate_harvesting, simulate_policy, DutyPolicy, HarvestConfig, SolarModel,
};
use micronano::wsn::protocol::Protocol;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random-but-valid harvest configuration (kept small: at most three
/// simulated days so the proptest inner loop stays fast).
fn random_config(rng: &mut ChaCha8Rng) -> HarvestConfig {
    HarvestConfig {
        battery_capacity: rng.gen_range(50.0..2_000.0),
        initial_fraction: rng.gen_range(0.0..1.0),
        active_power: rng.gen_range(0.01..0.2),
        sleep_power: rng.gen_range(0.0001..0.005),
        slot: rng.gen_range(120.0..1_800.0),
        days: rng.gen_range(1..4),
        solar: SolarModel {
            peak_power: rng.gen_range(0.01..0.2),
            day_length: 86_400.0,
            cloudiness: rng.gen_range(0.0..1.0),
        },
        seed: rng.gen_range(0..10_000),
    }
}

fn random_primitive(rng: &mut ChaCha8Rng) -> DutyPolicy {
    match rng.gen_range(0..3u8) {
        0 => DutyPolicy::Fixed(rng.gen_range(0.0..1.0)),
        1 => DutyPolicy::Greedy {
            threshold: rng.gen_range(0.05..0.8),
            duty_high: rng.gen_range(0.3..1.0),
            duty_low: rng.gen_range(0.0..0.3),
        },
        _ => DutyPolicy::EnergyNeutral {
            alpha: rng.gen_range(0.001..0.2),
        },
    }
}

/// Random (always-valid) policy expression, combinators until the depth
/// budget runs out. Mirrors the generator in `tests/conformance.rs`.
fn random_policy(rng: &mut ChaCha8Rng, depth: usize) -> PolicyExpr {
    let variants = if depth >= 2 { 3 } else { 7u8 };
    match rng.gen_range(0..variants) {
        0 => PolicyExpr::Fixed(rng.gen_range(0.0..1.0)),
        1 => PolicyExpr::Greedy {
            threshold: rng.gen_range(0.1..0.5),
            duty_high: rng.gen_range(0.5..1.0),
            duty_low: rng.gen_range(0.0..0.1),
        },
        2 => PolicyExpr::EnergyNeutral {
            alpha: rng.gen_range(0.001..0.1),
        },
        3 => PolicyExpr::Forecast {
            alpha: rng.gen_range(0.01..0.5),
        },
        4 => PolicyExpr::Derate {
            inner: Box::new(random_policy(rng, depth + 1)),
            fade: rng.gen_range(0.0..0.5),
            floor: rng.gen_range(0.0..0.5),
        },
        5 => {
            let low = rng.gen_range(0.05..0.4);
            PolicyExpr::Hysteresis {
                low,
                high: rng.gen_range(low + 0.1..0.95),
                on: Box::new(random_policy(rng, depth + 1)),
                off: Box::new(random_policy(rng, depth + 1)),
            }
        }
        _ => PolicyExpr::Clamp {
            inner: Box::new(random_policy(rng, depth + 1)),
            lo: rng.gen_range(0.0..0.3),
            hi: rng.gen_range(0.5..1.0),
        },
    }
}

/// Number of `Derate` nodes that tick every slot. Hysteresis evaluates
/// both branches each slot (to keep estimators warm), so both count.
fn derate_nodes(expr: &PolicyExpr) -> u64 {
    match expr {
        PolicyExpr::Fixed(_)
        | PolicyExpr::Greedy { .. }
        | PolicyExpr::EnergyNeutral { .. }
        | PolicyExpr::Forecast { .. } => 0,
        PolicyExpr::Derate { inner, .. } => 1 + derate_nodes(inner),
        PolicyExpr::Hysteresis { on, off, .. } => derate_nodes(on) + derate_nodes(off),
        PolicyExpr::Scheduled { pieces } => pieces.iter().map(|(_, p)| derate_nodes(p)).sum(),
        PolicyExpr::Clamp { inner, .. } => derate_nodes(inner),
    }
}

fn ctx_with_battery(battery: f64, capacity: f64) -> SlotCtx {
    SlotCtx {
        slot: 0,
        slot_of_day: 0,
        slots_per_day: 144,
        day: 0,
        slot_seconds: 600.0,
        battery,
        capacity,
        battery_fraction: battery / capacity,
        harvest_power: 0.02,
        active_power: 0.06,
        sleep_power: 0.001,
        discharged: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Contract 1: the composable engine replays the reference loop
    // byte-for-byte on every primitive policy.
    #[test]
    fn primitives_are_byte_identical_to_reference(seed in 0u64..1_000_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = random_config(&mut rng);
        let reference = random_primitive(&mut rng);
        let want = simulate_harvesting(reference, &config);
        let got = simulate_policy(&PolicyExpr::from(reference), &config);
        // Struct equality first (clear failure message), then the strict
        // bit-pattern check on every float field.
        prop_assert_eq!(want, got, "policy {}", reference.label());
        for (name, w, g) in [
            ("work", want.work, got.work),
            ("uptime", want.uptime, got.uptime),
            ("wasted", want.wasted, got.wasted),
            ("min_battery", want.min_battery, got.min_battery),
            ("harvested", want.harvested, got.harvested),
            ("final_battery", want.final_battery, got.final_battery),
            ("cycles", want.cycles, got.cycles),
        ] {
            prop_assert_eq!(
                w.to_bits(), g.to_bits(),
                "{} drifted: reference {} vs engine {}", name, w, g
            );
        }
    }

    // Contract 2a: greedy duty is monotone non-decreasing in battery.
    #[test]
    fn greedy_duty_is_monotone_in_battery(
        threshold in 0.05f64..0.9,
        duty_high in 0.5f64..1.0,
        duty_low in 0.0f64..0.5,
        b1 in 0.0f64..800.0,
        b2 in 0.0f64..800.0,
    ) {
        let expr = PolicyExpr::greedy(threshold, duty_high, duty_low).unwrap();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let d_lo = expr.evaluator().duty(&ctx_with_battery(lo, 800.0));
        let d_hi = expr.evaluator().duty(&ctx_with_battery(hi, 800.0));
        prop_assert!(
            d_lo <= d_hi,
            "duty({lo}) = {d_lo} > duty({hi}) = {d_hi}"
        );
    }

    // Contract 2b: a hysteresis composite of fixed duties never raises
    // its duty while the battery falls, and never lowers it while the
    // battery rises — no flapping inside the band.
    #[test]
    fn hysteresis_is_monotone_on_monotone_traces(
        low in 0.05f64..0.4,
        band in 0.15f64..0.5,
        duty_on in 0.5f64..1.0,
        duty_off in 0.0f64..0.5,
    ) {
        let expr = PolicyExpr::hysteresis(
            low,
            (low + band).min(0.95),
            PolicyExpr::Fixed(duty_on),
            PolicyExpr::Fixed(duty_off),
        )
        .unwrap();

        let mut eval = expr.evaluator();
        let mut prev = f64::INFINITY;
        for step in 0..=40 {
            let battery = 800.0 * (1.0 - step as f64 / 40.0);
            let duty = eval.duty(&ctx_with_battery(battery, 800.0));
            prop_assert!(duty <= prev, "duty rose to {duty} on a falling trace");
            prev = duty;
        }

        let mut eval = expr.evaluator();
        // Start discharged so the off-branch engages first.
        let mut prev = -1.0f64;
        for step in 0..=40 {
            let battery = 800.0 * (step as f64 / 40.0);
            let duty = eval.duty(&ctx_with_battery(battery, 800.0));
            // First slot may trip the engaged→off transition; from then
            // on the duty can only climb.
            if step > 0 {
                prop_assert!(duty >= prev, "duty fell to {duty} on a rising trace");
            }
            prev = duty;
        }
    }

    // Contract 3: energy conservation holds with derating engaged —
    // every joule is income, stored charge, overflow, or discharge.
    #[test]
    fn energy_is_conserved_under_derating(seed in 0u64..1_000_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = random_config(&mut rng);
        let expr = PolicyExpr::Derate {
            inner: Box::new(random_policy(&mut rng, 1)),
            fade: rng.gen_range(0.0..0.6),
            floor: rng.gen_range(0.0..0.5),
        };
        let stats = simulate_policy(&expr, &config);

        let initial = config.battery_capacity * config.initial_fraction;
        let discharge = stats.cycles * config.battery_capacity;
        let lhs = initial + stats.harvested;
        let rhs = stats.final_battery + stats.wasted + discharge;
        let scale = lhs.abs().max(1.0);
        prop_assert!(
            (lhs - rhs).abs() <= 1e-6 * scale,
            "conservation violated: in {lhs} != out {rhs}"
        );
        prop_assert!(stats.derate_events <= stats.total_slots * derate_nodes(&expr));
        prop_assert_eq!(stats.policy_evals, stats.total_slots);
        prop_assert!(stats.min_battery >= 0.0);
    }

    // Contract 4: random mixed-policy batches digest identically
    // serially, at 2 and 8 workers, and under sharding.
    #[test]
    fn mixed_policy_batches_digest_identically(seed in 0u64..100_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let batch: Vec<Scenario> = (0..4)
            .map(|_| {
                if rng.gen() {
                    Scenario::Harvest(HarvestScenario {
                        policy: random_policy(&mut rng, 0),
                        days: rng.gen_range(1..3),
                        cloudiness: rng.gen_range(0.0..1.0),
                        seed: rng.gen_range(0..1_000),
                    })
                } else {
                    Scenario::WsnLifetime(WsnScenario {
                        nodes: rng.gen_range(10..25),
                        side: rng.gen_range(60.0..150.0),
                        protocol: if rng.gen() {
                            Protocol::cluster(0.1, true)
                        } else {
                            Protocol::Direct
                        },
                        failure_rate: rng.gen_range(0.0..0.01),
                        max_rounds: rng.gen_range(50..150),
                        seed: rng.gen_range(0..1_000),
                        policies: match rng.gen_range(0..3u8) {
                            0 => None,
                            1 => Some(PolicyAssignment::Uniform(random_policy(&mut rng, 0))),
                            _ => Some(PolicyAssignment::RoundRobin(
                                (0..rng.gen_range(1..4usize))
                                    .map(|_| random_policy(&mut rng, 0))
                                    .collect(),
                            )),
                        },
                    })
                }
            })
            .collect();

        let serial = RunnerConfig::new()
            .workers(1)
            .cache(false)
            .build()
            .run(&batch)
            .outcomes;
        for workers in [2usize, 8] {
            let parallel = RunnerConfig::new()
                .workers(workers)
                .cache(false)
                .build()
                .run(&batch)
                .outcomes;
            prop_assert_eq!(&serial, &parallel, "diverged at {} workers", workers);
        }
        let sharded = RunnerConfig::new()
            .workers(4)
            .shards(2)
            .cache(false)
            .build()
            .run(&batch)
            .outcomes;
        prop_assert_eq!(serial.len(), sharded.len());
        for (s, p) in serial.iter().zip(&sharded) {
            prop_assert_eq!(s, p, "sharded run diverged");
            prop_assert_eq!(s.digest(), p.digest());
        }
    }
}

/// The ledger identity also holds for the reference loop and for
/// arbitrary composite policies (not just derated ones).
#[test]
fn conservation_holds_for_reference_and_composites() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..8 {
        let config = random_config(&mut rng);
        let initial = config.battery_capacity * config.initial_fraction;

        let reference = random_primitive(&mut rng);
        let s = simulate_harvesting(reference, &config);
        let rhs = s.final_battery + s.wasted + s.cycles * config.battery_capacity;
        assert!(
            (initial + s.harvested - rhs).abs() <= 1e-6 * (initial + s.harvested).max(1.0),
            "reference conservation violated for {}",
            reference.label()
        );

        let expr = random_policy(&mut rng, 0);
        let s = simulate_policy(&expr, &config);
        let rhs = s.final_battery + s.wasted + s.cycles * config.battery_capacity;
        assert!(
            (initial + s.harvested - rhs).abs() <= 1e-6 * (initial + s.harvested).max(1.0),
            "engine conservation violated for {}",
            expr.label()
        );
    }
}
