//! Differential pin of the reservation-indexed droplet router against the
//! frozen pre-index planner (`route::reference`): for any workload the
//! generators produce — spread random instances decorated with departures,
//! deadlines, merge groups, obstacles and degraded electrodes, and the
//! transport batches real `random_protocol` compilations hand the router —
//! both planners must return byte-identical results: the same `Route`
//! sequences, the same `RoutingOutcome` stats, or the same error.
//!
//! All randomness is seed-derived through the vendored deterministic
//! proptest, so the exact same cases replay in CI.

use micronano::fluidics::compiler::transport_plan;
use micronano::fluidics::geometry::{Cell, Grid};
use micronano::fluidics::modules::ModuleLibrary;
use micronano::fluidics::route::{self, Obstacle, RoutingConfig};
use micronano::fluidics::schedule::{schedule_with_keepout, ScheduleConfig};
use micronano::fluidics::workload::{random_protocol, random_routing_instance, RoutingWorkload};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Decorates a spread instance with the request features the compiler
/// uses — staggered departures, deadlines, a merge-group pair — plus a
/// random time-windowed obstacle and a couple of degraded electrodes,
/// all derived deterministically from `seed`.
fn decorate(
    seed: u64,
    grid: &Grid,
    requests: &mut [micronano::fluidics::route::RoutingRequest],
) -> (Vec<Obstacle>, Vec<Cell>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for req in requests.iter_mut() {
        if rng.gen_bool(0.5) {
            req.depart = rng.gen_range(0..6);
        }
        if rng.gen_bool(0.2) {
            // Generous: the trip plus slack for detours, so most decorated
            // instances stay routable while some genuinely fail.
            let trip = req.start.manhattan(req.goal) as u32;
            req.deadline = Some(req.depart + trip + rng.gen_range(0..20));
        }
    }
    if requests.len() >= 2 && rng.gen_bool(0.4) {
        // Two droplets heading for a shared merge point.
        let g = rng.gen_range(100..110);
        let goal = requests[0].goal;
        requests[0].merge_group = Some(g);
        requests[1].goal = goal;
        requests[1].merge_group = Some(g);
    }
    let mut obstacles = Vec::new();
    if rng.gen_bool(0.5) {
        let x = rng.gen_range(0..grid.width() - 2);
        let y = rng.gen_range(0..grid.height() - 2);
        let from = rng.gen_range(0..10);
        obstacles.push(Obstacle::region(
            Cell::new(x, y),
            Cell::new(x + rng.gen_range(0..3), y + rng.gen_range(0..3)),
            from,
            from + rng.gen_range(5..40),
            0,
        ));
    }
    let degraded: Vec<Cell> = (0..rng.gen_range(0..4))
        .map(|_| {
            Cell::new(
                rng.gen_range(0..grid.width()),
                rng.gen_range(0..grid.height()),
            )
        })
        .collect();
    (obstacles, degraded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random spread instances, decorated, across all three lookahead
    // tiers: the reservation-indexed planner and the frozen oracle must
    // agree exactly — routes, makespan, stall/move totals, rotation
    // count, or the identical error.
    #[test]
    fn matches_oracle_on_random_instances(
        seed in 0u64..100_000,
        droplets in 2usize..7,
        lookahead in 0u32..3,
    ) {
        let w = RoutingWorkload { grid_side: 14, droplets };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (grid, mut requests) = random_routing_instance(&w, &mut rng);
        let (obstacles, degraded) = decorate(seed ^ 0x5eed, &grid, &mut requests);
        let cfg = RoutingConfig::new().lookahead(lookahead);
        let fast = route::route_with_environment(&grid, &requests, &obstacles, &degraded, &cfg);
        let oracle =
            route::reference::route_with_environment(&grid, &requests, &obstacles, &degraded, &cfg);
        prop_assert_eq!(fast, oracle);
    }

    // The batches real protocol compilations hand the router: a random
    // full-opset protocol is scheduled, its transport plan (module
    // obstacles, merge groups, landing windows, deadlines) extracted, and
    // both planners must agree on it exactly.
    #[test]
    fn matches_oracle_on_protocol_batches(
        seed in 0u64..100_000,
        ops in 1usize..6,
        lookahead in 0u32..3,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let assay = random_protocol(ops, &mut rng);
        let grid = Grid::new(16, 16).expect("valid grid");
        let sched = schedule_with_keepout(
            &assay,
            &grid,
            &ModuleLibrary::default(),
            &ScheduleConfig::default(),
            &[],
        )
        .expect("random protocols schedule on a clean 16×16 array");
        let (requests, obstacles) = transport_plan(&assay, &sched);
        let cfg = RoutingConfig::new().lookahead(lookahead);
        let fast = route::route_with_environment(&grid, &requests, &obstacles, &[], &cfg);
        let oracle =
            route::reference::route_with_environment(&grid, &requests, &obstacles, &[], &cfg);
        prop_assert_eq!(fast, oracle);
    }
}
