//! Sharded-run conformance: distribution must never move a bit.
//!
//! Contracts, in increasing strength, all against the golden corpus of
//! `tests/golden/corpus.txt` (seed 42):
//!
//! 1. **In-process shards**: `RunnerConfig::new().shards(n)` for
//!    n ∈ {1, 2, 4} produces outcomes byte-identical to serial and
//!    digests identical to the golden file, with identical
//!    [`BatchTotals`].
//! 2. **Child-process shards**: `run_sharded` over n ∈ {1, 2, 4}
//!    real `shard_worker` processes produces the same bytes, totals —
//!    and, at one worker per shard, per-worker stats identical to the
//!    in-process sharded layout.
//! 3. **Fault recovery**: a worker that crashes mid-shard or hangs past
//!    the deadline is requeued in-process and the merged report still
//!    carries golden digests.
//! 4. **Merge algebra** (property): [`BatchStats::merge`] is associative
//!    and order-insensitive on random stats, so the merged result cannot
//!    depend on shard completion order.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use micronano::core::runner::sharded::{run_sharded, ShardFault, ShardedConfig};
use micronano::core::runner::{
    conformance_corpus, BatchStats, Runner, RunnerConfig, Scenario, ShardId, ShardStrategy,
    WorkerBatchStats,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seed of the committed corpus (must match `examples/regen_golden.rs`).
const CORPUS_SEED: u64 = 42;

/// The worker binary Cargo built for this test run.
fn worker_path() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_shard_worker"))
}

fn golden_digests() -> BTreeMap<String, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/corpus.txt");
    let text = std::fs::read_to_string(path).expect("tests/golden/corpus.txt is committed");
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (label, digest) = l.rsplit_once(' ').expect("`label digest` lines");
            (label.to_owned(), digest.to_owned())
        })
        .collect()
}

/// Asserts every outcome digest matches the committed golden file.
fn assert_golden(corpus: &[Scenario], outcomes: &[micronano::core::runner::ScenarioOutcome]) {
    let golden = golden_digests();
    assert_eq!(golden.len(), corpus.len());
    assert_eq!(outcomes.len(), corpus.len());
    for (scenario, outcome) in corpus.iter().zip(outcomes) {
        let label = scenario.label();
        let expected = golden
            .get(&label)
            .unwrap_or_else(|| panic!("scenario `{label}` missing from golden file"));
        assert_eq!(
            *expected,
            outcome.digest().to_string(),
            "golden drift on `{label}`"
        );
    }
}

#[test]
fn in_process_shards_match_serial_and_golden() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let reference = Runner::serial().run(&corpus);
    for shards in [1usize, 2, 4] {
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::ByFamily] {
            let report = RunnerConfig::new()
                .workers(1)
                .shards(shards)
                .strategy(strategy)
                .cache(false)
                .build()
                .run(&corpus);
            assert_eq!(
                reference.outcomes, report.outcomes,
                "outcome drift at {shards} in-process shards ({strategy:?})"
            );
            assert_eq!(
                reference.stats.totals(),
                report.stats.totals(),
                "stats drift at {shards} in-process shards ({strategy:?})"
            );
            assert_golden(&corpus, &report.outcomes);
        }
    }
}

#[test]
fn child_process_shards_match_serial_and_golden() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let reference = Runner::serial().run(&corpus);
    for shards in [1usize, 2, 4] {
        let config = ShardedConfig {
            shards,
            worker: Some(worker_path()),
            ..ShardedConfig::default()
        };
        let report = run_sharded(&corpus, &config).expect("driver I/O works");
        assert!(
            report.recovered.is_empty(),
            "healthy workers must not be requeued at {shards} shards: {:?}",
            report.recovered
        );
        assert_eq!(
            reference.outcomes, report.outcomes,
            "outcome drift at {shards} child processes"
        );
        assert_eq!(reference.stats.totals(), report.stats.totals());
        assert_golden(&corpus, &report.outcomes);

        // At one worker per shard the multi-process run must report the
        // *same stats* as the equivalent in-process sharded run — not
        // just the same totals: same per-shard breakdown, same
        // per-worker rows.
        let in_process = RunnerConfig::new()
            .workers(1)
            .shards(shards)
            .build()
            .run(&corpus);
        assert_eq!(in_process.stats, report.stats);
        // `BatchReport::shards` is empty for the unsharded (shards = 1)
        // in-process path; `run_sharded` always reports one row per
        // planned shard.
        assert_eq!(report.shards.len(), shards);
        if shards > 1 {
            assert_eq!(in_process.shards, report.shards);
        }
    }
}

#[test]
fn by_family_child_process_run_matches_serial() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let reference = Runner::serial().run(&corpus);
    let config = ShardedConfig {
        shards: 3,
        strategy: ShardStrategy::ByFamily,
        worker: Some(worker_path()),
        ..ShardedConfig::default()
    };
    let report = run_sharded(&corpus, &config).expect("driver I/O works");
    assert!(report.recovered.is_empty());
    assert_eq!(reference.outcomes, report.outcomes);
    assert_eq!(reference.stats.totals(), report.stats.totals());
    assert_golden(&corpus, &report.outcomes);
}

#[test]
fn crashed_worker_is_requeued_without_digest_drift() {
    let corpus = conformance_corpus(CORPUS_SEED);
    let reference = Runner::serial().run(&corpus);
    let config = ShardedConfig {
        shards: 2,
        worker: Some(worker_path()),
        fault: Some(ShardFault::Crash(ShardId(1))),
        ..ShardedConfig::default()
    };
    let report = run_sharded(&corpus, &config).expect("driver I/O works");
    assert_eq!(
        report.recovered,
        vec![ShardId(1)],
        "exactly the crashed shard must be requeued"
    );
    assert_eq!(reference.outcomes, report.outcomes);
    assert_eq!(reference.stats.totals(), report.stats.totals());
    assert_golden(&corpus, &report.outcomes);
}

#[test]
fn hung_worker_is_killed_at_the_deadline_and_requeued() {
    // Small cheap batch: the healthy shard finishes fast, the hung one
    // sleeps forever and must be killed when the 1-second deadline
    // passes. Only sub-millisecond families qualify — a dilution ladder
    // or washing chain in the healthy shard can cost hundreds of
    // milliseconds (seconds in debug) and bust the deadline itself.
    let batch: Vec<Scenario> = conformance_corpus(CORPUS_SEED)
        .into_iter()
        .filter(|s| {
            matches!(
                s,
                Scenario::Knockout(_) | Scenario::Harvest(_) | Scenario::NocPoint(_)
            )
        })
        .take(6)
        .collect();
    let reference = Runner::serial().run(&batch);
    let config = ShardedConfig {
        shards: 2,
        timeout: Duration::from_secs(1),
        worker: Some(worker_path()),
        fault: Some(ShardFault::Hang(ShardId(0))),
        ..ShardedConfig::default()
    };
    let report = run_sharded(&batch, &config).expect("driver I/O works");
    assert_eq!(report.recovered, vec![ShardId(0)]);
    assert_eq!(reference.outcomes, report.outcomes);
    assert_eq!(reference.stats.totals(), report.stats.totals());
}

#[test]
fn child_metrics_are_collected_and_merged() {
    let batch: Vec<Scenario> = conformance_corpus(CORPUS_SEED)
        .into_iter()
        .filter(|s| !matches!(s, Scenario::LabChip(_)))
        .take(8)
        .collect();
    let config = ShardedConfig {
        shards: 2,
        collect_metrics: true,
        worker: Some(worker_path()),
        ..ShardedConfig::default()
    };
    let report = run_sharded(&batch, &config).expect("driver I/O works");
    assert!(report.recovered.is_empty());
    let metrics = report.metrics.expect("collect_metrics fills the snapshot");
    assert_eq!(
        metrics.counter("runner.executed"),
        report.stats.executed,
        "merged child telemetry must agree with the merged stats"
    );
}

/// A random-but-plausible `BatchStats`, derived deterministically from
/// `seed` (the vendored proptest has no composite strategies, so the
/// properties draw seeds and expand them here).
fn random_stats(seed: u64) -> BatchStats {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let shard = ShardId(rng.gen_range(0..4u32));
    let per_worker = (0..rng.gen_range(0..4usize))
        .map(|_| WorkerBatchStats {
            shard,
            worker: rng.gen_range(0..4u32),
            executed: rng.gen_range(0..40),
            steals: rng.gen_range(0..10),
            cache_hits: rng.gen_range(0..10),
        })
        .collect();
    BatchStats {
        shard,
        scenarios: rng.gen_range(0..100),
        executed: rng.gen_range(0..100),
        cache_hits: rng.gen_range(0..50),
        deduped: rng.gen_range(0..50),
        steals: rng.gen_range(0..20),
        per_worker,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): the driver may merge shard results in
    // any grouping as children finish.
    #[test]
    fn merge_is_associative(
        sa in 0u64..1_000_000,
        sb in 0u64..1_000_000,
        sc in 0u64..1_000_000,
    ) {
        let (a, b, c) = (random_stats(sa), random_stats(sb), random_stats(sc));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    // Merging a permutation of the same parts yields the same report.
    #[test]
    fn merge_is_order_insensitive(
        seeds in collection::vec(0u64..1_000_000, 1..5),
        i in 0usize..4,
        j in 0usize..4,
    ) {
        let parts: Vec<BatchStats> = seeds.iter().map(|&s| random_stats(s)).collect();
        let forward = BatchStats::merged(&parts);
        let mut shuffled: Vec<BatchStats> = parts.iter().rev().cloned().collect();
        shuffled.swap(i % parts.len(), j % parts.len());
        prop_assert_eq!(forward, BatchStats::merged(&shuffled));
    }
}
