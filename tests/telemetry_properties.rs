//! Telemetry conformance: profiling must never change the physics.
//!
//! Three contracts over `mns-telemetry` as wired into the workspace:
//!
//! 1. **Inert when off**: with telemetry disabled (the default), the
//!    golden corpus digests match `tests/golden/corpus.txt` and random
//!    batches produce outcomes byte-identical to instrumented runs —
//!    enabling a profiler is not allowed to move a single bit.
//! 2. **Structurally deterministic when on**: under the virtual clock,
//!    the span *tree shape* of a batch is identical at 1, 2 and 8
//!    workers (timestamps may differ; structure may not).
//! 3. **Exports are well-formed**: the Chrome-trace JSON parses with
//!    correctly nested B/E pairs, folded stacks and the metrics snapshot
//!    pass their validators.
//!
//! Telemetry state is process-global, so every test here serializes on
//! one lock and resets state on entry and exit.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use micronano::core::runner::{
    conformance_corpus, AssayKind, FluidicsScenario, GrnModel, HarvestScenario, KnockoutScenario,
    NocScenario, Runner, RunnerConfig, Scenario, ScenarioOutcome, WsnScenario,
};
use micronano::noc::graph::CommGraph;
use micronano::policy::PolicyExpr;
use micronano::telemetry;
use micronano::wsn::protocol::Protocol;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seed of the committed corpus (must match `examples/regen_golden.rs`).
const CORPUS_SEED: u64 = 42;

static LOCK: Mutex<()> = Mutex::new(());

/// Uncached one-shot run at a given worker count (the old
/// `run_scenarios` shape, expressed through the consolidated API).
fn run_plain(batch: &[Scenario], workers: usize) -> Vec<ScenarioOutcome> {
    RunnerConfig::new()
        .workers(workers)
        .cache(false)
        .build()
        .run(batch)
        .outcomes
}

/// Runs `f` with exclusive ownership of the global telemetry state,
/// disabled and empty on entry and on exit.
fn isolated<T>(f: impl FnOnce() -> T) -> T {
    let _guard = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::disable();
    telemetry::reset();
    let out = f();
    telemetry::disable();
    telemetry::reset();
    out
}

fn golden_digests() -> BTreeMap<String, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/corpus.txt");
    let text = std::fs::read_to_string(path).expect("tests/golden/corpus.txt is committed");
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (label, digest) = l.rsplit_once(' ').expect("`label digest` lines");
            (label.to_owned(), digest.to_owned())
        })
        .collect()
}

/// A cheap mixed batch covering five scenario families, with a
/// deliberate duplicate so dedup interacts with the trace too.
fn cheap_batch(seed: u64, len: usize) -> Vec<Scenario> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut batch: Vec<Scenario> = (0..len)
        .map(|_| match rng.gen_range(0..5u8) {
            0 => Scenario::Harvest(HarvestScenario {
                policy: PolicyExpr::Fixed(rng.gen_range(0.0..1.0)),
                days: rng.gen_range(1..4),
                cloudiness: rng.gen_range(0.0..1.0),
                seed: rng.gen_range(0..1_000),
            }),
            1 => Scenario::WsnLifetime(WsnScenario {
                nodes: rng.gen_range(10..25),
                side: rng.gen_range(60.0..120.0),
                protocol: if rng.gen() {
                    Protocol::Direct
                } else {
                    Protocol::tree(40.0, rng.gen())
                },
                failure_rate: 0.0,
                max_rounds: rng.gen_range(50..150),
                seed: rng.gen_range(0..1_000),
                policies: None,
            }),
            2 => Scenario::Knockout(KnockoutScenario {
                model: GrnModel::THelper,
                knockout: None,
            }),
            3 => Scenario::NocPoint(NocScenario {
                app: CommGraph::hotspot(rng.gen_range(4..10), 1.0),
                max_cluster: rng.gen_range(2..5),
                shortcuts: rng.gen_range(0..3),
            }),
            _ => Scenario::FluidicsCompile(FluidicsScenario {
                assay: AssayKind::Multiplex,
                plex: rng.gen_range(1..3),
                grid_side: 16,
                dead_fraction: 0.0,
                fault_seed: 0,
            }),
        })
        .collect();
    if len > 1 {
        let dup = batch[rng.gen_range(0..len / 2)].clone();
        batch.push(dup);
    }
    batch
}

#[test]
fn disabled_telemetry_leaves_golden_corpus_untouched() {
    isolated(|| {
        assert!(!telemetry::is_enabled(), "telemetry must default to off");
        let corpus = conformance_corpus(CORPUS_SEED);
        let outcomes = Runner::serial().run(&corpus).outcomes;
        // Nothing was recorded by the instrumented hot paths…
        assert!(telemetry::take_trace().is_empty());
        assert!(telemetry::snapshot().is_empty());
        // …and the digests still match the committed golden file.
        let golden = golden_digests();
        assert_eq!(golden.len(), corpus.len());
        for (scenario, outcome) in corpus.iter().zip(&outcomes) {
            let label = scenario.label();
            let expected = golden
                .get(&label)
                .unwrap_or_else(|| panic!("scenario `{label}` missing from golden file"));
            assert_eq!(
                *expected,
                outcome.digest().to_string(),
                "golden drift on `{label}` with telemetry linked in but disabled"
            );
        }
    });
}

#[test]
fn span_tree_structure_is_identical_across_worker_counts() {
    isolated(|| {
        let batch = cheap_batch(7, 8);
        let mut structures = Vec::new();
        let mut outcomes = Vec::new();
        for workers in [1usize, 2, 8] {
            telemetry::reset();
            telemetry::enable(Arc::new(telemetry::VirtualClock::default()));
            let out = run_plain(&batch, workers);
            telemetry::disable();
            let trace = telemetry::take_trace();
            assert!(!trace.is_empty(), "instrumented run must record spans");
            structures.push((workers, trace.structure()));
            outcomes.push(out);
        }
        let (_, reference) = &structures[0];
        for (workers, structure) in &structures[1..] {
            assert_eq!(
                reference, structure,
                "span tree shape diverged at {workers} workers"
            );
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
        // Every non-duplicate scenario got its own task lane, plus the
        // untracked runner.run root.
        let reference = &structures[0].1;
        for line in ["[track 0] scenario.", "[untracked] runner.run"] {
            assert!(
                reference.contains(line),
                "expected `{line}` in:\n{reference}"
            );
        }
    });
}

#[test]
fn chrome_trace_and_folded_exports_validate() {
    isolated(|| {
        telemetry::enable(Arc::new(telemetry::VirtualClock::default()));
        let batch = cheap_batch(11, 6);
        let _ = run_plain(&batch, 4);
        telemetry::disable();
        let trace = telemetry::take_trace();
        let spans = trace.span_count();
        assert!(spans > 0);

        let chrome = telemetry::chrome_trace(&trace);
        let summary = telemetry::validate_chrome_trace(&chrome)
            .expect("chrome trace must parse with nested B/E pairs");
        assert_eq!(summary.spans, spans, "one B/E pair per span");
        assert_eq!(summary.events, 2 * spans);
        assert!(summary.tracks > 1, "task lanes plus the untracked lane");

        let folded = telemetry::folded_stacks(&trace);
        let stacks = telemetry::validate_folded(&folded).expect("folded stacks must validate");
        // Identical stacks from different tracks aggregate, so the line
        // count is the number of *distinct* stacks, never more than the
        // span count and at least the depth-1 variety of the batch.
        assert!(stacks > 0 && stacks <= spans, "{stacks} vs {spans}");
        assert!(folded.contains("runner.run "));
        assert!(folded.lines().any(|l| l.starts_with("scenario.")));

        let snap = telemetry::snapshot();
        assert!(snap.counter("runner.executed") > 0);
        telemetry::validate_snapshot_text(&snap.to_text())
            .expect("metrics snapshot text must validate");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Differential: an instrumented run returns outcomes byte-identical
    // to a plain one, for random batches and worker counts.
    #[test]
    fn instrumented_outcomes_match_plain_outcomes(
        seed in 0u64..100_000,
        len in 2usize..6,
        workers in 1usize..9,
    ) {
        let batch = cheap_batch(seed, len);
        let (plain, instrumented) = isolated(|| {
            let plain = run_plain(&batch, workers);
            telemetry::enable(Arc::new(telemetry::VirtualClock::default()));
            let instrumented = run_plain(&batch, workers);
            telemetry::disable();
            (plain, instrumented)
        });
        prop_assert_eq!(plain.len(), instrumented.len());
        for (i, (p, t)) in plain.iter().zip(&instrumented).enumerate() {
            prop_assert_eq!(
                p, t,
                "batch seed {} scenario `{}` changed under telemetry at {} workers",
                seed, batch[i].label(), workers
            );
            prop_assert_eq!(p.digest(), t.digest());
        }
    }
}
