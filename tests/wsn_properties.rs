//! Property-based tests of the sensor-network simulators: conservation
//! and boundedness invariants must hold for every protocol, field and
//! failure regime.

use micronano::wsn::field::Field;
use micronano::wsn::harvest::{simulate_harvesting, DutyPolicy, HarvestConfig, SolarModel};
use micronano::wsn::protocol::Protocol;
use micronano::wsn::sim::{simulate_lifetime, LifetimeConfig};
use proptest::prelude::*;

fn any_protocol(which: u8) -> Protocol {
    match which % 5 {
        0 => Protocol::Direct,
        1 => Protocol::tree(40.0, false),
        2 => Protocol::tree(40.0, true),
        3 => Protocol::cluster(0.1, false),
        _ => Protocol::cluster(0.1, true),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lifetime_stats_invariants(
        seed in 0u64..50_000,
        nodes in 10usize..60,
        side in 60.0f64..200.0,
        which in 0u8..5,
        failure in 0.0f64..0.01,
    ) {
        let field = Field::random(nodes, side, seed);
        let cfg = LifetimeConfig {
            max_rounds: 400,
            failure_rate: failure,
            seed,
            ..LifetimeConfig::default()
        };
        let s = simulate_lifetime(&field, any_protocol(which), &cfg);
        prop_assert!(s.delivered <= s.sensed, "{} > {}", s.delivered, s.sensed);
        prop_assert!(s.rounds <= cfg.max_rounds);
        prop_assert!(s.first_death_round <= s.half_death_round);
        prop_assert!(s.half_death_round <= s.rounds);
        prop_assert!((0.0..=1.0).contains(&s.delivered_ratio));
        prop_assert!((0.0..=1.0).contains(&s.avg_coverage));
        prop_assert!(s.energy_spent >= 0.0);
        // Energy conservation: the network cannot spend more than it had
        // (battery-only run).
        prop_assert!(
            s.energy_spent <= nodes as f64 * cfg.initial_energy + 1e-9,
            "spent {} of {}",
            s.energy_spent,
            nodes as f64 * cfg.initial_energy
        );
    }

    #[test]
    fn harvesting_stats_invariants(
        seed in 0u64..50_000,
        duty in 0.0f64..1.0,
        cloudiness in 0.0f64..1.0,
        days in 1u32..10,
    ) {
        let cfg = HarvestConfig {
            days,
            seed,
            solar: SolarModel {
                cloudiness,
                ..SolarModel::default()
            },
            ..HarvestConfig::default()
        };
        for policy in [
            DutyPolicy::Fixed(duty),
            DutyPolicy::Greedy { threshold: 0.3, duty_high: duty, duty_low: 0.02 },
            DutyPolicy::EnergyNeutral { alpha: 0.05 },
        ] {
            let s = simulate_harvesting(policy, &cfg);
            prop_assert!(s.dead_slots <= s.total_slots);
            prop_assert!((0.0..=1.0).contains(&s.uptime));
            prop_assert!(s.work <= s.total_slots as f64 * cfg.slot + 1e-9);
            prop_assert!(s.wasted >= 0.0);
            prop_assert!(s.min_battery >= 0.0);
            prop_assert!(s.min_battery <= cfg.battery_capacity);
            prop_assert!(s.harvested >= 0.0);
            prop_assert!((0.0..=cfg.battery_capacity).contains(&s.final_battery));
            prop_assert!(s.min_battery <= s.final_battery + 1e-9);
        }
    }

    // Energy is never created: what the node spent on work plus what it
    // still holds plus what overflowed can never exceed the initial
    // charge plus the solar income. (Equality does not hold — brown-out
    // slots pay sleep power without doing work.)
    #[test]
    fn harvest_energy_is_conserved(
        seed in 0u64..50_000,
        duty in 0.0f64..1.0,
        cloudiness in 0.0f64..1.0,
        days in 1u32..10,
    ) {
        let cfg = HarvestConfig {
            days,
            seed,
            solar: SolarModel { cloudiness, ..SolarModel::default() },
            ..HarvestConfig::default()
        };
        for policy in [
            DutyPolicy::Fixed(duty),
            DutyPolicy::Greedy { threshold: 0.3, duty_high: duty, duty_low: 0.02 },
            DutyPolicy::EnergyNeutral { alpha: 0.05 },
        ] {
            let s = simulate_harvesting(policy, &cfg);
            let initial = cfg.battery_capacity * cfg.initial_fraction;
            // Spending: active work at active_power; every live slot also
            // pays at least nothing extra here — bound from below by the
            // work term alone.
            let spent_on_work = s.work * cfg.active_power;
            prop_assert!(
                spent_on_work + s.final_battery + s.wasted <= initial + s.harvested + 1e-6,
                "{policy:?}: work {} + final {} + wasted {} > initial {} + harvested {}",
                spent_on_work, s.final_battery, s.wasted, initial, s.harvested
            );
            prop_assert!(
                s.wasted <= s.harvested + 1e-9,
                "cannot overflow more than was harvested"
            );
        }
    }

    // Solar income is a property of the trace alone: scaling the panel
    // up (higher peak power) never decreases the harvest, under any
    // policy, and the policy itself cannot change the income.
    #[test]
    fn harvest_income_is_monotone_in_irradiance(
        seed in 0u64..50_000,
        cloudiness in 0.0f64..1.0,
        days in 1u32..8,
        peak_lo in 0.01f64..0.05,
        boost in 1.0f64..4.0,
    ) {
        let base = HarvestConfig {
            days,
            seed,
            solar: SolarModel {
                peak_power: peak_lo,
                cloudiness,
                ..SolarModel::default()
            },
            ..HarvestConfig::default()
        };
        let brighter = HarvestConfig {
            solar: SolarModel {
                peak_power: peak_lo * boost,
                ..base.solar
            },
            ..base
        };
        let policies = [
            DutyPolicy::Fixed(0.5),
            DutyPolicy::EnergyNeutral { alpha: 0.05 },
        ];
        for policy in policies {
            let dim = simulate_harvesting(policy, &base);
            let bright = simulate_harvesting(policy, &brighter);
            prop_assert!(
                bright.harvested >= dim.harvested - 1e-9,
                "{policy:?}: brighter panel harvested {} < {}",
                bright.harvested, dim.harvested
            );
            // The trace scales linearly with peak power.
            prop_assert!(
                (bright.harvested - dim.harvested * boost).abs() <= 1e-6 * bright.harvested.max(1.0),
                "harvest must scale linearly with peak power"
            );
        }
        // Policy-independence of the income itself.
        let a = simulate_harvesting(policies[0], &base);
        let b = simulate_harvesting(policies[1], &base);
        prop_assert!((a.harvested - b.harvested).abs() <= 1e-9);
    }

    #[test]
    fn more_failures_never_help_coverage(
        seed in 0u64..10_000,
    ) {
        let field = Field::random(40, 120.0, seed);
        let base = LifetimeConfig {
            max_rounds: 300,
            seed,
            ..LifetimeConfig::default()
        };
        let healthy = simulate_lifetime(&field, Protocol::cluster(0.1, true), &base);
        let failing = simulate_lifetime(
            &field,
            Protocol::cluster(0.1, true),
            &LifetimeConfig { failure_rate: 0.01, ..base },
        );
        prop_assert!(failing.avg_coverage <= healthy.avg_coverage + 0.05);
    }
}
