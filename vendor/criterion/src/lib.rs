//! Offline vendored subset of the `criterion` benchmark API.
//!
//! Implements enough of criterion 0.5 for `cargo bench` to compile and
//! produce useful wall-clock numbers without the crates.io dependency
//! tree: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple
//! warm-up-then-median-of-samples loop; there is no statistical
//! analysis, plotting, or baseline persistence.
//!
//! Two environment variables extend the vendored subset for the CI
//! benchmark-regression gate:
//!
//! * `MNS_BENCH_QUICK=1` — clamp warm-up to 50 ms, measurement to
//!   200 ms and sample count to 5, overriding per-group settings, so a
//!   full bench sweep finishes in CI time.
//! * `MNS_BENCH_JSON=<path>` — append one JSON line
//!   `{"name":"<label>","median_ns":<n>}` per benchmark to `<path>` for
//!   machine consumption (the `bench_gate` binary).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Duration, Instant};

/// Whether `MNS_BENCH_QUICK` requests clamped CI-speed measurement.
fn quick_mode() -> bool {
    std::env::var("MNS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Applies the quick-mode clamps to the effective settings.
fn effective(
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
) -> (usize, Duration, Duration) {
    if quick_mode() {
        (
            sample_size.min(5),
            warm_up.min(Duration::from_millis(50)),
            measurement.min(Duration::from_millis(200)),
        )
    } else {
        (sample_size, warm_up, measurement)
    }
}

/// Appends the record for one finished benchmark to `MNS_BENCH_JSON`,
/// when set. Failures are reported but non-fatal: a broken JSON sink
/// must not fail the benchmarks themselves.
fn emit_json(label: &str, median: Duration) {
    let Ok(path) = std::env::var("MNS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"name\":\"{}\",\"median_ns\":{}}}\n",
        label.escape_default(),
        median.as_nanos()
    );
    let written = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: could not append to MNS_BENCH_JSON={path}: {e}");
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark manager.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for the sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with `input` under the given id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; [`iter`](Bencher::iter) times the
/// routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Option<Instant>,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run without recording until the warm-up budget is
        // spent (at least once).
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let deadline = self
            .deadline
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(1));
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let (sample_size, warm_up, measurement) = effective(sample_size, warm_up, measurement);
    let mut bencher = Bencher {
        samples: Vec::new(),
        deadline: Some(Instant::now() + measurement),
        warm_up,
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty");
    println!(
        "bench {label:<48} median {median:>12?} (min {min:?}, max {max:?}, n={})",
        bencher.samples.len()
    );
    emit_json(label, median);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
