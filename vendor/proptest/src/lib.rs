//! Offline vendored subset of the `proptest` API.
//!
//! Implements the slice of proptest this workspace uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, range and [`any`] strategies, [`collection::vec`] and
//! [`collection::btree_set`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` assertion family. Cases are
//! generated from a ChaCha8 stream seeded by the test-function name, so
//! every run (locally and in CI) replays the identical case list —
//! there is no persistence file and no shrinking.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::distributions::uniform::SampleUniform;
use rand::Rng;
pub use rand_chacha::ChaCha8Rng;

/// Generation parameters for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert!` within a generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A value generator. Unlike full proptest there is no shrinking: a
/// strategy is just a deterministic map from RNG state to a value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ChaCha8Rng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_prim {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut ChaCha8Rng) -> $ty {
                rng.gen()
            }
        }
    )*};
}
arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{ChaCha8Rng, Strategy};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size specification accepted by the collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi.max(self.size.lo + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with target sizes drawn from `size`.
    /// Duplicate draws are retried a bounded number of times, so very
    /// narrow element domains may yield smaller sets.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut ChaCha8Rng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.lo..self.size.hi.max(self.size.lo + 1));
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 20 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Derives the deterministic RNG for one case of one property test.
pub fn case_rng(test_name: &str, case: u32) -> ChaCha8Rng {
    // FNV-1a over the test name decorrelates sibling tests; the case
    // index perturbs the seed with a SplitMix64-style multiplier.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let seed = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rand::SeedableRng::seed_from_u64(seed)
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0u32..10, ys in collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`",
                    left,
                    right
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    let _ = (left, right);
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        $($fmt)*
                    )));
                }
            }
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    }};
}
