//! Distributions: `Standard`, `Bernoulli` and the uniform range
//! samplers, all mirroring rand 0.8.5 semantics.

use crate::Rng;

/// Types that can produce values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Turns the distribution plus a generator into an iterator.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: Rng,
        Self: Sized,
    {
        DistIter {
            distr: self,
            rng,
            phantom: std::marker::PhantomData,
        }
    }
}

/// Iterator of samples returned by [`Distribution::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    phantom: std::marker::PhantomData<T>,
}

impl<D: Distribution<T>, R: Rng, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// The "natural" distribution of each primitive type: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_uint_from_u32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*};
}
standard_uint_from_u32!(u8, u16, u32);

macro_rules! standard_uint_from_u64 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_uint_from_u64!(u64, usize, u128);

macro_rules! standard_int_via_uint {
    ($($ty:ty => $via:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                let v: $via = Standard.sample(rng);
                v as $ty
            }
        }
    )*};
}
standard_int_via_uint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Upstream compares the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit multiply-based conversion, as in rand 0.8.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// A boolean distribution returning `true` with probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p_int: u64,
    always_true: bool,
}

/// Error for a probability outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BernoulliError;

impl std::fmt::Display for BernoulliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bernoulli probability outside [0, 1]")
    }
}

impl std::error::Error for BernoulliError {}

impl Bernoulli {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`BernoulliError`] unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Bernoulli {
                    p_int: u64::MAX,
                    always_true: true,
                });
            }
            return Err(BernoulliError);
        }
        // p * 2^64, exactly as upstream.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        Ok(Bernoulli {
            p_int,
            always_true: false,
        })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.always_true {
            return true;
        }
        rng.next_u64() < self.p_int
    }
}

pub mod uniform {
    //! Uniform range sampling with rand 0.8's single-shot algorithms.

    use super::Standard;
    use crate::distributions::Distribution;
    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Marker for types [`Rng::gen_range`] accepts.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)`.
        fn sample_single<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

        /// Samples uniformly from `[low, high]`.
        fn sample_single_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Range argument of [`Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "cannot sample empty range");
            T::sample_single_inclusive(start, end, rng)
        }
    }

    /// 64×64→128 widening multiply.
    fn wmul64(a: u64, b: u64) -> (u64, u64) {
        let wide = (a as u128) * (b as u128);
        ((wide >> 64) as u64, wide as u64)
    }

    /// 32×32→64 widening multiply.
    fn wmul32(a: u32, b: u32) -> (u32, u32) {
        let wide = (a as u64) * (b as u64);
        ((wide >> 32) as u32, wide as u32)
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $uty:ty, $wmul:ident) => {
            impl SampleUniform for $ty {
                fn sample_single<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let range = high.wrapping_sub(low) as $uty;
                    // Lemire-style rejection zone, as in rand 0.8's
                    // `sample_single` for wide unsigned types.
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $uty = Standard.sample(rng);
                        let (hi, lo) = $wmul(v, range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_single_inclusive<R: Rng + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = (high.wrapping_sub(low) as $uty).wrapping_add(1);
                    if range == 0 {
                        // The whole type range: any value is in bounds.
                        return Standard.sample(rng);
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $uty = Standard.sample(rng);
                        let (hi, lo) = $wmul(v, range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl!(u8, u32, wmul32);
    uniform_int_impl!(u16, u32, wmul32);
    uniform_int_impl!(u32, u32, wmul32);
    uniform_int_impl!(u64, u64, wmul64);
    uniform_int_impl!(usize, u64, wmul64);
    uniform_int_impl!(i8, u32, wmul32);
    uniform_int_impl!(i16, u32, wmul32);
    uniform_int_impl!(i32, u32, wmul32);
    uniform_int_impl!(i64, u64, wmul64);
    uniform_int_impl!(isize, u64, wmul64);

    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $mantissa_bits:expr, $exponent_bias:expr) => {
            impl SampleUniform for $ty {
                fn sample_single<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let scale = high - low;
                    loop {
                        // A mantissa-filled value in [1, 2), as upstream.
                        let fraction: $uty = {
                            let v: $uty = Standard.sample(rng);
                            v >> $bits_to_discard
                        };
                        let value1_2 =
                            <$ty>::from_bits(($exponent_bias << $mantissa_bits) | fraction);
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                    }
                }

                fn sample_single_inclusive<R: Rng + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let scale = high - low;
                    let fraction: $uty = {
                        let v: $uty = Standard.sample(rng);
                        v >> $bits_to_discard
                    };
                    let value1_2 = <$ty>::from_bits(($exponent_bias << $mantissa_bits) | fraction);
                    let value0_1 = value1_2 - 1.0;
                    // The scale multiply may round up to `high`, which the
                    // inclusive variant accepts.
                    (value0_1 * scale + low).min(high)
                }
            }
        };
    }

    uniform_float_impl!(f64, u64, 12, 52, 1023u64);
    uniform_float_impl!(f32, u32, 9, 23, 127u32);
}
