//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access and no crates.io registry
//! cache, so the workspace vendors the exact slice of `rand` it uses:
//! [`RngCore`], [`SeedableRng`] (with the PCG-based `seed_from_u64`
//! expansion of rand_core 0.6), the [`Rng`] extension trait
//! (`gen`/`gen_range`/`gen_bool`/`sample_iter`), the [`distributions`]
//! `Standard` distribution and the widening-multiply uniform samplers,
//! and [`seq::SliceRandom`]. All algorithms follow the upstream rand
//! 0.8.5 implementations bit-for-bit so seeded streams stay comparable
//! with environments that build against the real crate.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Bernoulli, Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it over the full
    /// seed with the PCG32 sequence used by rand_core 0.6 so seeded
    /// streams match the upstream crates exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let word = pcg32(&mut state);
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value the [`Standard`] distribution can produce.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        Bernoulli::new(p)
            .expect("gen_bool probability must be in [0, 1]")
            .sample(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Turns the generator into an iterator of samples.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
