//! Sequence-related helpers: the [`SliceRandom`] extension trait.

use crate::Rng;

/// Uniform index into `0..ubound`, using a 32-bit draw for small bounds
/// exactly like rand 0.8's `gen_index`.
fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniformly chooses one element, or `None` if the slice is empty.
    fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
    where
        R: Rng + ?Sized;

    /// Uniformly chooses `amount` distinct elements (all of them when the
    /// slice is shorter), returned in selection order.
    fn choose_multiple<R>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, Self::Item>
    where
        R: Rng + ?Sized;

    /// Shuffles the slice in place (Fisher–Yates from the back, as
    /// upstream).
    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + ?Sized;
}

/// Iterator over elements selected by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: std::vec::IntoIter<usize>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.indices.next().map(|i| &self.slice[i])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

impl<'a, T> ExactSizeIterator for SliceChooseIter<'a, T> {}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R>(&self, rng: &mut R) -> Option<&T>
    where
        R: Rng + ?Sized,
    {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }

    fn choose_multiple<R>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, T>
    where
        R: Rng + ?Sized,
    {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector (rand's
        // `sample_inplace`).
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = gen_index(rng, self.len() - i) + i;
            indices.swap(i, j);
        }
        indices.truncate(amount);
        SliceChooseIter {
            slice: self,
            indices: indices.into_iter(),
        }
    }

    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + ?Sized,
    {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}
