//! Offline vendored [`ChaCha8Rng`]: the reduced-round ChaCha generator
//! with the same keystream layout as the upstream `rand_chacha` crate
//! (64-bit block counter in words 12–13, 64-bit stream id in words
//! 14–15, little-endian word output in block order).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block (constants, key, counter, stream).
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 = exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the 8-round core and refills the output buffer, then advances
    /// the 64-bit block counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        self.index = 0;
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter and stream) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_key_block0_matches_chacha_reference() {
        // ChaCha8 keystream, zero key / zero counter / zero nonce; first
        // words of block 0 from the ChaCha reference implementation.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        assert_eq!(first, u32::from_le_bytes([0x3e, 0x00, 0xef, 0x2f]));
    }
}
